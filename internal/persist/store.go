package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"treesim/internal/telemetry"
)

// ErrStoreFailed is latched after the first WAL or snapshot I/O error.
// The store is fail-stop: a torn mid-log frame followed by "successful"
// later appends would make every subsequent committed record
// unrecoverable (scanWAL truncates at the first bad frame), and
// retrying fsync after a failure silently drops the dirty pages the
// kernel already gave up on. So after any I/O error the store refuses
// further appends and snapshots; everything committed before the fault
// survives reopen, and the caller degrades to serving what it has.
var ErrStoreFailed = errors.New("persist: store failed (fail-stop after I/O error)")

// File names inside a Store's data directory.
const (
	snapshotName = "snapshot.snap"
	walName      = "wal.log"
)

// Options configures a Store.
type Options struct {
	// SyncEveryAppend fsyncs the WAL after each record. Off, a record
	// survives process death (SIGKILL) the moment Append returns — the
	// page cache holds it — but can be lost to a machine crash until the
	// next snapshot or sync. On, every committed churn operation also
	// survives power loss, at the cost of one fsync per operation on the
	// subscribe path.
	SyncEveryAppend bool
	// Telemetry is the metrics registry the store reports WAL and
	// snapshot activity into (nil: a private registry — counters still
	// work, nobody scrapes them).
	Telemetry *telemetry.Registry
	// FS is the filesystem the store persists through (nil: the real
	// one). Tests inject fault-injecting implementations here.
	FS FS
}

// storeMetrics are the store's registry handles. Names are part of the
// stable observability surface (README "Observability"); CI's
// chaos-smoke asserts on treesim_wal_replayed_records_total.
type storeMetrics struct {
	appends     *telemetry.Counter
	appendBytes *telemetry.Counter
	fsyncNS     *telemetry.Histogram
	replayed    *telemetry.Counter
	snapWrites  *telemetry.Counter
	snapBytes   *telemetry.Counter
	snapNS      *telemetry.Histogram
	snapLoads   *telemetry.Counter
}

func newStoreMetrics(reg *telemetry.Registry) storeMetrics {
	lb := telemetry.DefaultLatencyBuckets()
	return storeMetrics{
		appends:     reg.Counter("treesim_wal_appends_total", "WAL records appended."),
		appendBytes: reg.Counter("treesim_wal_append_bytes_total", "Bytes appended to the WAL (frame headers included)."),
		fsyncNS:     reg.Histogram("treesim_wal_fsync_ns", "WAL fsync latency, nanoseconds.", lb),
		replayed:    reg.Counter("treesim_wal_replayed_records_total", "WAL records replayed into the engine during recovery."),
		snapWrites:  reg.Counter("treesim_snapshot_writes_total", "Snapshots published."),
		snapBytes:   reg.Counter("treesim_snapshot_bytes_total", "Snapshot payload bytes written."),
		snapNS:      reg.Histogram("treesim_snapshot_write_ns", "Snapshot publish latency (sync + write + rename), nanoseconds.", lb),
		snapLoads:   reg.Counter("treesim_snapshot_loads_total", "Snapshot payloads loaded at recovery."),
	}
}

// Store is one broker's durable state: the snapshot/WAL pair in a data
// directory. Open → LoadSnapshot → Replay → (serve, Append / periodic
// WriteSnapshot) → Close. Methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options
	fs   FS

	met storeMetrics

	mu      sync.Mutex
	wal     File
	nextLSN uint64
	lastLSN uint64 // highest LSN appended or recovered
	snapLSN uint64 // watermark of the loaded/last-written snapshot
	pending int    // records appended since the last snapshot
	closed  bool
	failed  bool // fail-stop latch; see ErrStoreFailed
}

// Open opens (creating if needed) the data directory and its WAL. A
// torn WAL tail from a previous crash is truncated away here, so the
// file is append-clean before any new record lands.
func Open(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create data dir: %w", err)
	}
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Store{dir: dir, opts: opts, fs: fsys, met: newStoreMetrics(reg)}
	reg.GaugeFunc("treesim_wal_pending_records", "WAL records not yet covered by a snapshot.", func() float64 {
		return float64(s.Pending())
	})
	reg.GaugeFunc("treesim_store_failed", "1 when the store has latched fail-stop after an I/O error, 0 while healthy.", func() float64 {
		if s.Failed() {
			return 1
		}
		return 0
	})
	_, snapLSN, ok, err := readSnapshotFile(fsys, s.snapshotPath())
	if err != nil {
		return nil, err
	}
	if ok {
		s.snapLSN = snapLSN
	}
	f, err := fsys.OpenFile(s.walPath(), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open wal: %w", err)
	}
	goodEnd, lastLSN, err := scanWAL(f, nil)
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > goodEnd {
		if err := f.Truncate(goodEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("persist: trim torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(goodEnd, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: seek wal: %w", err)
	}
	s.wal = f
	s.lastLSN = max64(lastLSN, s.snapLSN)
	s.nextLSN = s.lastLSN + 1
	return s, nil
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// LoadSnapshot returns the latest snapshot payload, or ok=false when
// none has been written yet.
func (s *Store) LoadSnapshot() (payload []byte, ok bool, err error) {
	payload, _, ok, err = readSnapshotFile(s.fs, s.snapshotPath())
	if err == nil && ok {
		s.met.snapLoads.Inc()
	}
	return payload, ok, err
}

// Replay streams the WAL records not covered by the snapshot (LSN above
// the snapshot watermark) through fn in log order. Records at or below
// the watermark — stale debris from a crash between snapshot publish
// and WAL truncation — are skipped, which is what makes re-running
// recovery idempotent. Call before the first Append.
func (s *Store) Replay(fn func(Record) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("persist: store closed")
	}
	_, _, err := scanWAL(s.wal, func(rec Record) error {
		if rec.LSN <= s.snapLSN {
			return nil
		}
		if err := fn(rec); err != nil {
			return err
		}
		s.met.replayed.Inc()
		return nil
	})
	if err != nil {
		return err
	}
	// scanWAL moved the file cursor; park it back at the append point.
	if _, err := s.wal.Seek(0, 2); err != nil {
		return fmt.Errorf("persist: seek wal: %w", err)
	}
	return nil
}

// Append assigns the record the next LSN, writes it to the WAL, and
// returns the assigned LSN. When Append returns, the record is in the
// kernel page cache (process-death durable); with
// Options.SyncEveryAppend it is also on stable storage. The returned
// LSN is the record's position in the log — callers snapshotting
// concurrently with appends pass the last LSN covered by their state
// cut to WriteSnapshot.
func (s *Store) Append(rec Record) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("persist: store closed")
	}
	if s.failed {
		return 0, ErrStoreFailed
	}
	lsn := s.nextLSN
	n, err := appendWAL(s.wal, lsn, rec)
	if err != nil {
		return 0, s.failLocked(err)
	}
	s.met.appends.Inc()
	s.met.appendBytes.Add(uint64(n))
	if s.opts.SyncEveryAppend {
		if err := s.syncWALTimed(); err != nil {
			return 0, s.failLocked(err)
		}
	}
	s.nextLSN++
	s.lastLSN = lsn
	s.pending++
	return lsn, nil
}

// LastLSN returns the highest LSN appended or recovered so far — the
// watermark a snapshot of a quiescent store covers.
func (s *Store) LastLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastLSN
}

// Pending returns the number of records appended since the last
// snapshot — the input to a snapshot-when-the-log-grows policy.
func (s *Store) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// WriteSnapshot atomically publishes a snapshot covering every record
// up to and including LSN upto, then drops the WAL records the payload
// covers. The caller must pass the watermark its payload actually
// reflects — the LSN of the last journaled record included in the
// state cut — NOT the store's current tail: records appended between
// the cut and this call are newer than the payload, and stamping them
// as covered would silently drop committed churn on replay. When upto
// equals the tail the WAL is truncated; when records have landed past
// it they are preserved (still pending) and replayed over the new
// snapshot on recovery.
//
// The snapshot rename is the commit point: a crash before it keeps the
// old snapshot + full WAL, a crash after it but before the truncation
// leaves stale WAL records that the LSN watermark skips on replay.
func (s *Store) WriteSnapshot(payload []byte, upto uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("persist: store closed")
	}
	if s.failed {
		return ErrStoreFailed
	}
	if upto > s.lastLSN {
		// A watermark above the tail would mark records not yet written
		// as covered; clamp to what the log actually holds.
		upto = s.lastLSN
	}
	snapStart := time.Now()
	if err := s.syncWALTimed(); err != nil {
		return s.failLocked(err)
	}
	if err := writeSnapshotFile(s.fs, s.snapshotPath(), payload, upto); err != nil {
		return s.failLocked(err)
	}
	s.met.snapWrites.Inc()
	s.met.snapBytes.Add(uint64(len(payload)))
	s.met.snapNS.ObserveDuration(time.Since(snapStart).Nanoseconds())
	s.snapLSN = upto
	if upto < s.lastLSN {
		// Records landed after the caller's state cut: keep the whole
		// log (LSNs are dense, so the uncovered tail is countable) and
		// let the watermark skip the covered prefix on replay. The next
		// fully-covering snapshot truncates.
		s.pending = int(s.lastLSN - upto)
		return nil
	}
	s.pending = 0
	if err := s.wal.Truncate(0); err != nil {
		return s.failLocked(fmt.Errorf("persist: truncate wal: %w", err))
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return s.failLocked(fmt.Errorf("persist: seek wal: %w", err))
	}
	return nil
}

// Failed reports whether the store has latched fail-stop. Once true it
// never resets: the process must restart (and re-scan the log) to
// persist again.
func (s *Store) Failed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// failLocked latches the fail-stop flag and wraps err so callers can
// match either the sentinel or the root cause. Caller holds s.mu.
func (s *Store) failLocked(err error) error {
	s.failed = true
	return fmt.Errorf("%w: %w", ErrStoreFailed, err)
}

// Close closes the WAL file, syncing it first when the store is still
// healthy (a post-failure fsync retry would falsely report the lost
// pages as flushed). The file is always closed, even when the sync
// fails, and neither error masks the other.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var syncErr error
	if !s.failed {
		if err := s.wal.Sync(); err != nil {
			syncErr = fmt.Errorf("persist: sync wal: %w", err)
		}
	}
	var closeErr error
	if err := s.wal.Close(); err != nil {
		closeErr = fmt.Errorf("persist: close wal: %w", err)
	}
	return errors.Join(syncErr, closeErr)
}

// syncWALTimed fsyncs the WAL under the fsync-latency histogram.
// Caller holds s.mu.
func (s *Store) syncWALTimed() error {
	t0 := time.Now()
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("persist: sync wal: %w", err)
	}
	s.met.fsyncNS.ObserveDuration(time.Since(t0).Nanoseconds())
	return nil
}

func (s *Store) snapshotPath() string { return filepath.Join(s.dir, snapshotName) }
func (s *Store) walPath() string      { return filepath.Join(s.dir, walName) }

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
