package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// WAL frame layout: a fixed header followed by the record body.
//
//	[4] body length N (little-endian uint32)
//	[4] CRC32 (IEEE) over the body
//	[N] body = [8] LSN (little-endian uint64) ++ JSON-encoded Record
//
// The CRC covers the body only; a corrupt length field surfaces as an
// impossible size or a body short-read, both treated as a torn tail.
const walHeaderLen = 8

// maxWALRecord bounds one record body. Far above any real churn record
// (the largest is a rebuild partition); its job is to keep a corrupted
// length prefix from provoking a giant allocation.
const maxWALRecord = 64 << 20

// scanWAL walks the log from the start, calling fn for each intact
// record, and returns the byte offset just past the last intact record
// along with the highest LSN seen. A torn or corrupt tail — short
// header, short body, CRC mismatch, impossible length, or undecodable
// JSON — ends the scan without error: everything before it is good,
// everything from it on is the debris of a mid-append crash.
func scanWAL(f File, fn func(Record) error) (goodEnd int64, lastLSN uint64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	var hdr [walHeaderLen]byte
	var body []byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return goodEnd, lastLSN, nil // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n < 8 || n > maxWALRecord {
			return goodEnd, lastLSN, nil // corrupt length prefix
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(f, body); err != nil {
			return goodEnd, lastLSN, nil // torn body
		}
		if crc32.ChecksumIEEE(body) != sum {
			return goodEnd, lastLSN, nil // bit rot or torn rewrite
		}
		lsn := binary.LittleEndian.Uint64(body[:8])
		var rec Record
		if err := json.Unmarshal(body[8:], &rec); err != nil {
			return goodEnd, lastLSN, nil
		}
		rec.LSN = lsn
		if fn != nil {
			if err := fn(rec); err != nil {
				return goodEnd, lastLSN, err
			}
		}
		goodEnd += int64(walHeaderLen) + int64(n)
		if lsn > lastLSN {
			lastLSN = lsn
		}
	}
}

// appendWAL frames and writes one record at the file's current end.
func appendWAL(f File, lsn uint64, rec Record) (int, error) {
	rec.LSN = 0 // the LSN travels in the frame, not the JSON
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("persist: encode wal record: %w", err)
	}
	frame := make([]byte, walHeaderLen+8+len(payload))
	body := frame[walHeaderLen:]
	binary.LittleEndian.PutUint64(body[:8], lsn)
	copy(body[8:], payload)
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	// One write per record: the frame either lands whole or tears at the
	// tail, never interleaves with a neighbor.
	if _, err := f.Write(frame); err != nil {
		return 0, fmt.Errorf("persist: append wal: %w", err)
	}
	return len(frame), nil
}
