// Package querygen generates tree-pattern subscription workloads from a
// DTD, reproducing the paper's custom XPath generator (Section 5.1): it
// creates valid tree patterns via random walks over the DTD's
// parent-child relation, controlled by the maximum height h, the
// wildcard probability p*, the descendant probability p//, the branching
// probability pλ, and a Zipf skew θ for tag selection.
package querygen

import (
	"fmt"
	"math/rand"
	"sort"

	"treesim/internal/dtd"
	"treesim/internal/pattern"
	"treesim/internal/xmltree"
	"treesim/internal/zipf"
)

// Options mirrors the paper's generator parameters. The paper's values:
// h = 10, p* = 0.1, p// = 0.1, pλ = 0.1, θ = 1.
type Options struct {
	// MaxHeight h bounds the pattern height (nodes on the longest
	// root-to-leaf chain, descendant operators included).
	MaxHeight int
	// WildcardProb p* is the probability a node's label is "*".
	WildcardProb float64
	// DescendantProb p// is the probability a step is reached through a
	// descendant operator instead of a child edge.
	DescendantProb float64
	// BranchProb pλ is the probability of more than one child at a
	// node.
	BranchProb float64
	// Theta θ is the Zipf skew used to select element tag names.
	Theta float64
	// StopProb ends a downward walk early at each level, varying
	// pattern heights below h. Default 0.2.
	StopProb float64
	// ValueProb adds, at elements whose content model allows character
	// data, a leaf value constraint drawn from Values (the paper's
	// Figure 1 patterns constrain values like "Mozart"). Requires the
	// corpus to be generated with the same value vocabulary
	// (xmlgen.Options.EmitText / Values). Default 0.
	ValueProb float64
	// Values is the value vocabulary for ValueProb.
	Values []string
	// Seed drives generation deterministically.
	Seed int64
}

// Defaults returns the paper's parameterization.
func Defaults(seed int64) Options {
	return Options{
		MaxHeight:      10,
		WildcardProb:   0.1,
		DescendantProb: 0.1,
		BranchProb:     0.1,
		Theta:          1,
		StopProb:       0.2,
		Seed:           seed,
	}
}

func (o Options) withDefaults() Options {
	if o.MaxHeight == 0 {
		o.MaxHeight = 10
	}
	if o.StopProb == 0 {
		o.StopProb = 0.2
	}
	return o
}

// Generator produces tree patterns valid for one DTD.
type Generator struct {
	d     *dtd.DTD
	opts  Options
	rng   *rand.Rand
	names []string // all element names, sorted (Zipf rank order)
	zipfs map[int]*zipf.Zipf
}

// New returns a workload generator. It panics if the DTD is invalid.
func New(d *dtd.DTD, opts Options) *Generator {
	if err := d.Validate(); err != nil {
		panic(fmt.Sprintf("querygen: %v", err))
	}
	names := d.Names()
	sort.Strings(names)
	return &Generator{
		d:     d,
		opts:  opts.withDefaults(),
		rng:   rand.New(rand.NewSource(opts.Seed)),
		names: names,
		zipfs: make(map[int]*zipf.Zipf),
	}
}

// zipfFor returns (cached) a Zipf sampler over a domain of size n.
func (g *Generator) zipfFor(n int) *zipf.Zipf {
	z, ok := g.zipfs[n]
	if !ok {
		z = zipf.New(g.rng, n, g.opts.Theta)
		g.zipfs[n] = z
	}
	return z
}

// Generate produces one pattern. The walk starts at the DTD root; with
// probability p// it instead starts with a descendant operator at a
// Zipf-selected element (a "//x…" pattern can anchor anywhere).
func (g *Generator) Generate() *pattern.Pattern {
	p := pattern.New()
	h := g.opts.MaxHeight
	if g.rng.Float64() < g.opts.DescendantProb && h >= 2 {
		start := g.names[g.zipfFor(len(g.names)).Next()]
		d := &pattern.Node{Label: pattern.Descendant}
		d.Children = []*pattern.Node{g.walk(start, h-1)}
		p.Root.Children = []*pattern.Node{d}
	} else {
		p.Root.Children = []*pattern.Node{g.walk(g.d.RootName, h)}
	}
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("querygen: generated invalid pattern: %v", err))
	}
	return p
}

// walk builds the pattern node for element name with the given height
// budget (≥ 1).
func (g *Generator) walk(name string, budget int) *pattern.Node {
	n := &pattern.Node{Label: name}
	if g.rng.Float64() < g.opts.WildcardProb {
		n.Label = pattern.Wildcard
	}
	// Value constraint at text-bearing elements.
	if g.opts.ValueProb > 0 && budget >= 2 && len(g.opts.Values) > 0 &&
		g.d.HasPCData(name) && g.rng.Float64() < g.opts.ValueProb {
		v := g.opts.Values[g.zipfFor(len(g.opts.Values)).Next()]
		n.Children = append(n.Children, &pattern.Node{Label: v})
	}
	kids := g.d.ChildNames(name)
	if budget <= 1 || len(kids) == 0 || g.rng.Float64() < g.opts.StopProb {
		return n
	}
	// Number of branches: 1, plus more with probability pλ each.
	branches := 1
	for branches < len(kids) && branches < 4 && g.rng.Float64() < g.opts.BranchProb {
		branches++
	}
	// Select distinct child tags by Zipf rank over the sorted list.
	chosen := make(map[int]struct{}, branches)
	z := g.zipfFor(len(kids))
	for len(chosen) < branches {
		chosen[z.Next()] = struct{}{}
	}
	idxs := make([]int, 0, branches)
	for i := range chosen {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		childBudget := budget - 1
		useDesc := g.rng.Float64() < g.opts.DescendantProb && childBudget >= 2
		if useDesc {
			childBudget-- // the descendant operator occupies a level
		}
		child := g.walk(kids[i], childBudget)
		if useDesc {
			child = &pattern.Node{Label: pattern.Descendant, Children: []*pattern.Node{child}}
		}
		n.Children = append(n.Children, child)
	}
	return n
}

// GenerateDistinct produces n structurally distinct patterns (by
// canonical form). It panics if the DTD cannot yield that many distinct
// patterns within a generous attempt budget.
func (g *Generator) GenerateDistinct(n int) []*pattern.Pattern {
	seen := make(map[string]struct{}, n)
	out := make([]*pattern.Pattern, 0, n)
	for attempts := 0; len(out) < n; attempts++ {
		if attempts > 200*n+1000 {
			panic(fmt.Sprintf("querygen: could not generate %d distinct patterns (got %d)", n, len(out)))
		}
		p := g.Generate()
		key := p.String()
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, p)
	}
	return out
}

// Workload is a classified pattern set over a document corpus.
type Workload struct {
	// Positive patterns match at least one corpus document (SP).
	Positive []*pattern.Pattern
	// Negative patterns match no corpus document (SN).
	Negative []*pattern.Pattern
}

// ClassifyWorkload generates distinct patterns until it has collected
// nPos positive and nNeg negative patterns with respect to the corpus
// (exact document semantics, as in the paper). It panics when the
// attempt budget is exhausted, which indicates a mis-tuned DTD/corpus
// pair.
func (g *Generator) ClassifyWorkload(docs []*xmltree.Tree, nPos, nNeg int) Workload {
	var w Workload
	seen := make(map[string]struct{})
	maxAttempts := 500*(nPos+nNeg) + 1000
	for attempts := 0; len(w.Positive) < nPos || len(w.Negative) < nNeg; attempts++ {
		if attempts > maxAttempts {
			panic(fmt.Sprintf("querygen: workload generation stalled: %d/%d positive, %d/%d negative",
				len(w.Positive), nPos, len(w.Negative), nNeg))
		}
		p := g.Generate()
		key := p.String()
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		matched := false
		for _, d := range docs {
			if pattern.Matches(d, p) {
				matched = true
				break
			}
		}
		if matched && len(w.Positive) < nPos {
			w.Positive = append(w.Positive, p)
		} else if !matched && len(w.Negative) < nNeg {
			w.Negative = append(w.Negative, p)
		}
	}
	return w
}
