package querygen

import (
	"strings"
	"testing"

	"treesim/internal/dtd"
	"treesim/internal/pattern"
	"treesim/internal/xmlgen"
)

func TestGeneratedPatternsValid(t *testing.T) {
	d := dtd.NITFLike()
	g := New(d, Defaults(1))
	for i := 0; i < 300; i++ {
		p := g.Generate()
		if err := p.Validate(); err != nil {
			t.Fatalf("pattern %d invalid: %v", i, err)
		}
		if h := p.Height(); h > 10 {
			t.Fatalf("pattern %d height %d > 10: %s", i, h, p)
		}
	}
}

func TestLabelsComeFromDTD(t *testing.T) {
	d := dtd.Media()
	g := New(d, Options{MaxHeight: 6, WildcardProb: 0, DescendantProb: 0, Seed: 2})
	known := make(map[string]bool)
	for _, n := range d.Names() {
		known[n] = true
	}
	for i := 0; i < 200; i++ {
		p := g.Generate()
		var check func(n *pattern.Node)
		check = func(n *pattern.Node) {
			if n.Label != pattern.Root && n.Label != pattern.Wildcard && n.Label != pattern.Descendant {
				if !known[n.Label] {
					t.Fatalf("pattern %d uses unknown label %q: %s", i, n.Label, p)
				}
			}
			for _, c := range n.Children {
				check(c)
			}
		}
		check(p.Root)
	}
}

func TestNoWildcardsWhenDisabled(t *testing.T) {
	d := dtd.Media()
	g := New(d, Options{MaxHeight: 5, WildcardProb: 0, DescendantProb: 0, BranchProb: 0, Seed: 3})
	for i := 0; i < 100; i++ {
		s := g.Generate().String()
		if strings.Contains(s, "*") || strings.Contains(s, "//") {
			t.Fatalf("pattern %d has operators despite zero probabilities: %s", i, s)
		}
	}
}

func TestOperatorRates(t *testing.T) {
	// With p* = p// = 0.3, a healthy share of patterns must contain
	// the operators.
	d := dtd.NITFLike()
	g := New(d, Options{MaxHeight: 8, WildcardProb: 0.3, DescendantProb: 0.3, BranchProb: 0.3, Theta: 1, Seed: 4})
	wild, desc, branch := 0, 0, 0
	const n = 300
	for i := 0; i < n; i++ {
		p := g.Generate()
		s := p.String()
		if strings.Contains(s, "*") {
			wild++
		}
		if strings.Contains(s, "//") {
			desc++
		}
		if strings.Contains(s, "[") {
			branch++
		}
	}
	if wild < n/10 {
		t.Errorf("only %d/%d patterns contain wildcards", wild, n)
	}
	if desc < n/10 {
		t.Errorf("only %d/%d patterns contain descendants", desc, n)
	}
	if branch < n/20 {
		t.Errorf("only %d/%d patterns branch", branch, n)
	}
}

func TestGenerateDistinct(t *testing.T) {
	d := dtd.NITFLike()
	g := New(d, Defaults(5))
	ps := g.GenerateDistinct(200)
	seen := make(map[string]bool)
	for _, p := range ps {
		s := p.String()
		if seen[s] {
			t.Fatalf("duplicate pattern %s", s)
		}
		seen[s] = true
	}
}

func TestClassifyWorkload(t *testing.T) {
	d := dtd.NITFLike()
	docs := xmlgen.New(d, xmlgen.Options{Seed: 6}).GenerateN(150)
	g := New(d, Defaults(7))
	w := g.ClassifyWorkload(docs, 30, 30)
	if len(w.Positive) != 30 || len(w.Negative) != 30 {
		t.Fatalf("workload sizes %d/%d, want 30/30", len(w.Positive), len(w.Negative))
	}
	// Spot-check classification correctness.
	for _, p := range w.Positive[:5] {
		found := false
		for _, doc := range docs {
			if pattern.Matches(doc, p) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("positive pattern matches nothing: %s", p)
		}
	}
	for _, p := range w.Negative[:5] {
		for _, doc := range docs {
			if pattern.Matches(doc, p) {
				t.Errorf("negative pattern matches a document: %s", p)
				break
			}
		}
	}
}

func TestValueConstraints(t *testing.T) {
	d := dtd.Media()
	values := []string{"Mozart", "Brahms", "Shakespeare"}
	g := New(d, Options{
		MaxHeight: 8, ValueProb: 0.8, Values: values,
		StopProb: 0.1, Seed: 12,
	})
	// Value leaves must appear and must come from the vocabulary.
	vocab := make(map[string]bool)
	for _, v := range values {
		vocab[v] = true
	}
	elems := make(map[string]bool)
	for _, n := range d.Names() {
		elems[n] = true
	}
	found := false
	for i := 0; i < 200; i++ {
		p := g.Generate()
		var rec func(n *pattern.Node)
		rec = func(n *pattern.Node) {
			if n.Label != pattern.Root && n.Label != pattern.Wildcard &&
				n.Label != pattern.Descendant && !elems[n.Label] {
				if !vocab[n.Label] {
					t.Fatalf("non-vocabulary value %q in %s", n.Label, p)
				}
				found = true
			}
			for _, c := range n.Children {
				rec(c)
			}
		}
		rec(p.Root)
	}
	if !found {
		t.Error("no value constraints generated despite ValueProb=0.8")
	}
}

func TestValueWorkloadEndToEnd(t *testing.T) {
	// Documents carrying text values and patterns constraining them
	// must produce positive matches.
	d := dtd.Media()
	values := []string{"Mozart", "Brahms"}
	docs := xmlgen.New(d, xmlgen.Options{Seed: 3, EmitText: true, Values: values}).GenerateN(200)
	g := New(d, Options{MaxHeight: 8, ValueProb: 0.6, Values: values, StopProb: 0.2, Seed: 5})
	positives := 0
	withValues := 0
	for i := 0; i < 150; i++ {
		p := g.Generate()
		hasValue := strings.Contains(p.String(), "Mozart") || strings.Contains(p.String(), "Brahms")
		if !hasValue {
			continue
		}
		withValues++
		for _, doc := range docs {
			if pattern.Matches(doc, p) {
				positives++
				break
			}
		}
	}
	if withValues == 0 {
		t.Fatal("no value patterns generated")
	}
	if positives == 0 {
		t.Errorf("none of %d value patterns matched any document", withValues)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	d := dtd.XCBLLike()
	a := New(d, Defaults(9))
	b := New(d, Defaults(9))
	for i := 0; i < 50; i++ {
		if a.Generate().String() != b.Generate().String() {
			t.Fatalf("generation diverged at %d", i)
		}
	}
}
