// Package routing simulates the content-based publish/subscribe
// dissemination architectures the paper motivates (Section 1): a
// population of consumers with tree-pattern subscriptions receives a
// stream of XML documents under one of three strategies —
//
//   - Flooding: every document reaches every consumer (no filtering);
//   - Filtered: a router matches each document against every
//     subscription and unicasts to the interested consumers;
//   - Communities: consumers are grouped into semantic communities
//     (via tree-pattern similarity); each document is matched once
//     against a community representative and, on a hit, flooded within
//     that community.
//
// The simulation accounts for network messages, filter evaluations, and
// delivery precision/recall, reproducing the trade-off that motivates
// accurate similarity estimation: good communities cut filtering cost
// dramatically while keeping precision and recall high.
package routing

import (
	"fmt"

	"treesim/internal/matching"
	"treesim/internal/pattern"
	"treesim/internal/xmltree"
)

// Strategy selects a dissemination architecture.
type Strategy int

const (
	// Flood delivers every document to every consumer.
	Flood Strategy = iota
	// Filtered matches every (document, subscription) pair centrally.
	Filtered
	// Communities matches per community representative, then floods
	// within matching communities.
	Communities
)

func (s Strategy) String() string {
	switch s {
	case Flood:
		return "flood"
	case Filtered:
		return "filtered"
	case Communities:
		return "communities"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Result aggregates a simulation run.
type Result struct {
	Strategy Strategy
	// Docs and Consumers describe the workload.
	Docs, Consumers int
	// Messages is the number of document deliveries to consumers.
	Messages int
	// FilterEvals counts exact pattern evaluations performed by the
	// routing layer.
	FilterEvals int
	// TruePositives / FalsePositives / FalseNegatives compare deliveries
	// with actual interest.
	TruePositives, FalsePositives, FalseNegatives int
}

// Precision is the fraction of deliveries that were wanted,
// TruePositives / Messages.
//
// Edge-case convention (shared with the live broker's stats, see
// internal/broker): with zero deliveries nothing wrong was sent, so
// precision is vacuously 1. This keeps "no traffic yet" from reading
// as a routing failure and makes precision monotone under adding a
// first correct delivery.
func (r Result) Precision() float64 {
	if r.Messages == 0 {
		return 1
	}
	return float64(r.TruePositives) / float64(r.Messages)
}

// Recall is the fraction of wanted deliveries that happened,
// TruePositives / (TruePositives + FalseNegatives).
//
// Edge-case convention (shared with the live broker's stats): with
// zero interested consumers nothing could be missed, so recall is
// vacuously 1 — even when spurious deliveries occurred (those are
// charged to precision, not recall).
func (r Result) Recall() float64 {
	want := r.TruePositives + r.FalseNegatives
	if want == 0 {
		return 1
	}
	return float64(r.TruePositives) / float64(want)
}

func (r Result) String() string {
	return fmt.Sprintf("%-11s msgs=%-8d evals=%-8d precision=%.3f recall=%.3f",
		r.Strategy, r.Messages, r.FilterEvals, r.Precision(), r.Recall())
}

// Network is a simulated consumer population.
type Network struct {
	subs []*pattern.Pattern
	// communities are index sets over subs; nil means no clustering
	// (required only by the Communities strategy).
	communities [][]int
	// representative per community: the member whose subscription
	// stands for the community at the router (the community seed).
	reps []int
}

// NewNetwork returns a network of consumers with the given
// subscriptions.
func NewNetwork(subs []*pattern.Pattern) *Network {
	return &Network{subs: subs}
}

// SetCommunities installs a clustering (index sets over the
// subscriptions) and chooses each community's first member as its
// representative.
func (n *Network) SetCommunities(communities [][]int) {
	n.communities = communities
	n.reps = make([]int, len(communities))
	for i, c := range communities {
		if len(c) == 0 {
			panic("routing: empty community")
		}
		n.reps[i] = c[0]
	}
}

// Communities returns the installed clustering.
func (n *Network) Communities() [][]int { return n.communities }

// Run disseminates the documents under the strategy and returns the
// accounting. Ground-truth interest is computed with the exact matcher.
func (n *Network) Run(docs []*xmltree.Tree, strategy Strategy) Result {
	res := Result{Strategy: strategy, Docs: len(docs), Consumers: len(n.subs)}
	truth := n.interestMatrix(docs)
	switch strategy {
	case Flood:
		for di := range docs {
			for ci := range n.subs {
				res.Messages++
				if truth[di][ci] {
					res.TruePositives++
				} else {
					res.FalsePositives++
				}
			}
		}
	case Filtered:
		eng := matching.NewEngine(n.subs)
		for di, d := range docs {
			matched := eng.Match(d)
			for _, ci := range matched {
				res.Messages++
				if truth[di][ci] {
					res.TruePositives++
				} else {
					res.FalsePositives++
				}
			}
			miss := countTrue(truth[di]) - len(matched)
			if miss > 0 {
				res.FalseNegatives += miss
			}
		}
		_, cands, _ := eng.Stats()
		res.FilterEvals = cands
	case Communities:
		if n.communities == nil {
			panic("routing: Communities strategy requires SetCommunities")
		}
		for di, d := range docs {
			delivered := make([]bool, len(n.subs))
			for gi, comm := range n.communities {
				res.FilterEvals++
				if !pattern.Matches(d, n.subs[n.reps[gi]]) {
					continue
				}
				for _, ci := range comm {
					delivered[ci] = true
					res.Messages++
					if truth[di][ci] {
						res.TruePositives++
					} else {
						res.FalsePositives++
					}
				}
			}
			for ci := range n.subs {
				if truth[di][ci] && !delivered[ci] {
					res.FalseNegatives++
				}
			}
		}
	default:
		panic(fmt.Sprintf("routing: unknown strategy %d", int(strategy)))
	}
	return res
}

func (n *Network) interestMatrix(docs []*xmltree.Tree) [][]bool {
	out := make([][]bool, len(docs))
	for di, d := range docs {
		row := make([]bool, len(n.subs))
		for ci, p := range n.subs {
			row[ci] = pattern.Matches(d, p)
		}
		out[di] = row
	}
	return out
}

func countTrue(row []bool) int {
	c := 0
	for _, b := range row {
		if b {
			c++
		}
	}
	return c
}
