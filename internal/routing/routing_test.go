package routing

import (
	"testing"

	"treesim/internal/pattern"
	"treesim/internal/xmltree"
)

func docsOf(t *testing.T, specs ...string) []*xmltree.Tree {
	t.Helper()
	out := make([]*xmltree.Tree, len(specs))
	for i, s := range specs {
		d, err := xmltree.ParseCompact(s)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = d
	}
	return out
}

func subsOf(specs ...string) []*pattern.Pattern {
	out := make([]*pattern.Pattern, len(specs))
	for i, s := range specs {
		out[i] = pattern.MustParse(s)
	}
	return out
}

func TestFloodDeliversEverything(t *testing.T) {
	docs := docsOf(t, "a(b)", "a(c)")
	subs := subsOf("/a/b", "/a/c", "//zzz")
	res := NewNetwork(subs).Run(docs, Flood)
	if res.Messages != 6 {
		t.Errorf("Messages = %d, want 6", res.Messages)
	}
	if res.Recall() != 1 {
		t.Errorf("flood recall = %v, want 1", res.Recall())
	}
	// 2 of 6 deliveries are wanted.
	if got := res.Precision(); got != 2.0/6 {
		t.Errorf("flood precision = %v, want 1/3", got)
	}
	if res.FilterEvals != 0 {
		t.Errorf("flood should not filter, evals = %d", res.FilterEvals)
	}
}

func TestFilteredIsExact(t *testing.T) {
	docs := docsOf(t, "a(b)", "a(c)", "x(y)")
	subs := subsOf("/a/b", "/a/c", "//y", "/nomatch")
	res := NewNetwork(subs).Run(docs, Filtered)
	if res.Precision() != 1 || res.Recall() != 1 {
		t.Errorf("filtered precision/recall = %v/%v, want 1/1", res.Precision(), res.Recall())
	}
	if res.Messages != 3 {
		t.Errorf("Messages = %d, want 3", res.Messages)
	}
	if res.FalsePositives != 0 || res.FalseNegatives != 0 {
		t.Errorf("filtered FP/FN = %d/%d", res.FalsePositives, res.FalseNegatives)
	}
}

func TestCommunitiesTradeoff(t *testing.T) {
	docs := docsOf(t, "a(b)", "a(b)", "a(c)", "x(y)")
	// Consumers 0,1 share interests; 2 differs; 3 is unmatched by any doc.
	subs := subsOf("/a/b", "/a[b]", "/a/c", "//zzz")
	net := NewNetwork(subs)
	net.SetCommunities([][]int{{0, 1}, {2}, {3}})
	res := net.Run(docs, Communities)
	// Representative of {0,1} is sub 0 (/a/b): docs 0,1 hit -> deliver
	// to 0 and 1 (both interested: /a[b] matches too). Community {2}
	// rep /a/c: doc 2 hits. Community {3} never hits.
	if res.FalseNegatives != 0 {
		t.Errorf("FN = %d, want 0", res.FalseNegatives)
	}
	if res.Precision() != 1 {
		t.Errorf("precision = %v, want 1 (identical interests)", res.Precision())
	}
	// Filter evaluations: one per (doc, community) = 4 docs × 3 = 12,
	// versus 16 for per-consumer filtering.
	if res.FilterEvals != 12 {
		t.Errorf("FilterEvals = %d, want 12", res.FilterEvals)
	}
	if res.Messages != 5 {
		t.Errorf("Messages = %d, want 5", res.Messages)
	}
}

func TestCommunitiesImperfectClusteringLosesPrecisionOrRecall(t *testing.T) {
	docs := docsOf(t, "a(b)", "a(c)")
	// Bad clustering: dissimilar consumers grouped; rep is /a/b.
	subs := subsOf("/a/b", "/a/c")
	net := NewNetwork(subs)
	net.SetCommunities([][]int{{0, 1}})
	res := net.Run(docs, Communities)
	// Doc 0 matches rep: delivered to both (consumer 1 uninterested ->
	// FP). Doc 1 misses rep: consumer 1 interested but not delivered ->
	// FN.
	if res.FalsePositives != 1 || res.FalseNegatives != 1 {
		t.Errorf("FP/FN = %d/%d, want 1/1", res.FalsePositives, res.FalseNegatives)
	}
	if res.Precision() == 1 || res.Recall() == 1 {
		t.Errorf("bad clustering should lose precision and recall: %v", res)
	}
}

func TestCommunitiesRequiresClustering(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic without SetCommunities")
		}
	}()
	NewNetwork(subsOf("/a")).Run(docsOf(t, "a"), Communities)
}

func TestResultStringAndEdgeCases(t *testing.T) {
	var r Result
	if r.Precision() != 1 || r.Recall() != 1 {
		t.Error("empty result should have perfect precision/recall")
	}
	if r.String() == "" {
		t.Error("empty Result string")
	}
	if Flood.String() != "flood" || Filtered.String() != "filtered" || Communities.String() != "communities" {
		t.Error("strategy names wrong")
	}
}

// TestPrecisionRecallConventions pins down the documented edge-case
// conventions the live broker's stats share: zero deliveries →
// precision 1 (vacuous), zero interest → recall 1 (vacuous), spurious
// deliveries charge precision but never recall.
func TestPrecisionRecallConventions(t *testing.T) {
	cases := []struct {
		name              string
		messages          int
		tp, fp, fn        int
		precision, recall float64
	}{
		{"zero everything", 0, 0, 0, 0, 1, 1},
		{"zero messages, missed interest", 0, 0, 0, 3, 1, 0},
		{"spurious only: precision hit, recall vacuous", 4, 0, 4, 0, 0, 1},
		{"perfect", 5, 5, 0, 0, 1, 1},
		{"mixed", 4, 3, 1, 1, 0.75, 0.75},
		{"all missed", 0, 0, 0, 2, 1, 0},
		{"partial recall, full precision", 2, 2, 0, 2, 1, 0.5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := Result{
				Messages:       c.messages,
				TruePositives:  c.tp,
				FalsePositives: c.fp,
				FalseNegatives: c.fn,
			}
			if got := r.Precision(); got != c.precision {
				t.Errorf("Precision() = %v, want %v", got, c.precision)
			}
			if got := r.Recall(); got != c.recall {
				t.Errorf("Recall() = %v, want %v", got, c.recall)
			}
		})
	}
}
