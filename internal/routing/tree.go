package routing

import (
	"fmt"

	"treesim/internal/aggregate"
	"treesim/internal/pattern"
	"treesim/internal/xmltree"
)

// BrokerTree simulates a hierarchical content-based routing overlay in
// the style of the paper's XNet system (Chand & Felber, SRDS'04):
// brokers form a complete k-ary tree, consumers attach to leaf brokers,
// and every broker keeps, per child link, a routing table of the
// subscriptions reachable through that link. A document entering at the
// root is forwarded down exactly the links whose table matches it, and
// leaf brokers filter per consumer.
//
// Routing tables can be aggregated (Chan et al., VLDB'02 — the paper's
// reference [4]): each link table is reduced to at most TableLimit
// generalized patterns using selectivity estimates. Aggregation shrinks
// tables and per-broker filtering work at the cost of spurious
// forwarding — never missed deliveries, since aggregates contain their
// originals.
type BrokerTree struct {
	opts    BrokerTreeOptions
	subs    []*pattern.Pattern
	root    *broker
	brokers int
	tableSz int
}

// BrokerTreeOptions configures the overlay.
type BrokerTreeOptions struct {
	// Fanout is the number of children per inner broker (≥ 2).
	Fanout int
	// Depth is the number of broker levels (≥ 1; depth 1 is a single
	// broker holding all consumers).
	Depth int
	// TableLimit caps each link table's size via aggregation; 0 keeps
	// exact tables.
	TableLimit int
	// Estimator supplies selectivities for aggregation decisions
	// (required when TableLimit > 0).
	Estimator aggregate.Selectivities
}

type broker struct {
	children []*broker
	// tables[i] guards the link to children[i].
	tables [][]*pattern.Pattern
	// consumers are indices into the subscription set (leaf brokers).
	consumers []int
}

// NewBrokerTree builds the overlay and its routing tables.
func NewBrokerTree(subs []*pattern.Pattern, opts BrokerTreeOptions) (*BrokerTree, error) {
	if opts.Fanout < 2 {
		opts.Fanout = 2
	}
	if opts.Depth < 1 {
		opts.Depth = 1
	}
	if opts.TableLimit > 0 && opts.Estimator == nil {
		return nil, fmt.Errorf("routing: aggregated tables require an estimator")
	}
	bt := &BrokerTree{opts: opts, subs: subs}
	bt.root = bt.build(1)
	// Attach consumers to leaves round-robin.
	leaves := bt.leaves()
	for i := range subs {
		leaves[i%len(leaves)].consumers = append(leaves[i%len(leaves)].consumers, i)
	}
	bt.fillTables(bt.root)
	return bt, nil
}

func (bt *BrokerTree) build(level int) *broker {
	bt.brokers++
	b := &broker{}
	if level < bt.opts.Depth {
		for i := 0; i < bt.opts.Fanout; i++ {
			b.children = append(b.children, bt.build(level+1))
		}
	}
	return b
}

func (bt *BrokerTree) leaves() []*broker {
	var out []*broker
	var rec func(b *broker)
	rec = func(b *broker) {
		if len(b.children) == 0 {
			out = append(out, b)
			return
		}
		for _, c := range b.children {
			rec(c)
		}
	}
	rec(bt.root)
	return out
}

// fillTables computes each link's table: the subscriptions reachable in
// the child's subtree, aggregated when configured. It returns the set
// of subscription indices below b.
func (bt *BrokerTree) fillTables(b *broker) []int {
	below := append([]int{}, b.consumers...)
	for _, c := range b.children {
		childBelow := bt.fillTables(c)
		table := make([]*pattern.Pattern, 0, len(childBelow))
		for _, si := range childBelow {
			table = append(table, bt.subs[si])
		}
		if bt.opts.TableLimit > 0 && len(table) > bt.opts.TableLimit {
			res := aggregate.Aggregate(table, bt.opts.TableLimit, bt.opts.Estimator)
			table = res.Patterns
		}
		b.tables = append(b.tables, table)
		bt.tableSz += len(table)
		below = append(below, childBelow...)
	}
	return below
}

// Brokers returns the number of brokers in the overlay.
func (bt *BrokerTree) Brokers() int { return bt.brokers }

// TableSize returns the total number of routing-table entries across
// all links.
func (bt *BrokerTree) TableSize() int { return bt.tableSz }

// TreeResult accounts one dissemination run over the overlay.
type TreeResult struct {
	Docs int
	// LinkMessages counts broker-to-broker transmissions.
	LinkMessages int
	// SpuriousLinks counts transmissions into subtrees that held no
	// interested consumer (the cost of aggregation).
	SpuriousLinks int
	// FilterEvals counts pattern evaluations at brokers (link tables
	// and leaf consumer filters).
	FilterEvals int
	// Deliveries counts broker-to-consumer handoffs; consumers are
	// always filtered by their exact subscription, so every delivery is
	// wanted.
	Deliveries int
	// Missed counts interested consumers that the overlay failed to
	// reach (always 0: aggregation only over-approximates).
	Missed int
	// TableSize snapshots the overlay's total table entries.
	TableSize int
}

func (r TreeResult) String() string {
	return fmt.Sprintf("tables=%-6d linkMsgs=%-7d (spurious %d) evals=%-8d delivered=%-6d missed=%d",
		r.TableSize, r.LinkMessages, r.SpuriousLinks, r.FilterEvals, r.Deliveries, r.Missed)
}

// Run routes the documents from the root and returns the accounting.
func (bt *BrokerTree) Run(docs []*xmltree.Tree) TreeResult {
	res := TreeResult{Docs: len(docs), TableSize: bt.tableSz}
	for _, d := range docs {
		delivered := make(map[int]bool)
		bt.route(bt.root, d, &res, delivered)
		for si, p := range bt.subs {
			if !delivered[si] && pattern.Matches(d, p) {
				res.Missed++
			}
		}
	}
	return res
}

func (bt *BrokerTree) route(b *broker, d *xmltree.Tree, res *TreeResult, delivered map[int]bool) {
	// Leaf filtering per consumer.
	for _, si := range b.consumers {
		res.FilterEvals++
		if pattern.Matches(d, bt.subs[si]) {
			res.Deliveries++
			delivered[si] = true
		}
	}
	for i, c := range b.children {
		// Evaluate the link table until the first match (short
		// circuit, as a router would).
		forwarded := false
		for _, p := range b.tables[i] {
			res.FilterEvals++
			if pattern.Matches(d, p) {
				forwarded = true
				break
			}
		}
		if !forwarded {
			continue
		}
		res.LinkMessages++
		if !bt.subtreeInterested(c, d) {
			res.SpuriousLinks++
		}
		bt.route(c, d, res, delivered)
	}
}

// subtreeInterested reports whether any consumer below b matches d
// (ground truth for spurious-forwarding accounting).
func (bt *BrokerTree) subtreeInterested(b *broker, d *xmltree.Tree) bool {
	for _, si := range b.consumers {
		if pattern.Matches(d, bt.subs[si]) {
			return true
		}
	}
	for _, c := range b.children {
		if bt.subtreeInterested(c, d) {
			return true
		}
	}
	return false
}
