package routing

import (
	"testing"

	"treesim/internal/matchset"
	"treesim/internal/pattern"
	"treesim/internal/selectivity"
	"treesim/internal/synopsis"
	"treesim/internal/xmltree"
)

func treeEstimator(t *testing.T, docs []*xmltree.Tree) *selectivity.Estimator {
	t.Helper()
	s := synopsis.New(synopsis.Options{Kind: matchset.KindSets, SetCapacity: 1 << 20, Seed: 1})
	for _, d := range docs {
		s.Insert(d)
	}
	return selectivity.New(s)
}

func TestBrokerTreeExactTablesNeverMiss(t *testing.T) {
	docs := docsOf(t, "a(b)", "a(c)", "x(y)", "a(b,c)")
	subs := subsOf("/a/b", "/a/c", "//y", "/nomatch", "/a[b][c]", "//c")
	bt, err := NewBrokerTree(subs, BrokerTreeOptions{Fanout: 2, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := bt.Run(docs)
	if res.Missed != 0 {
		t.Errorf("exact tables missed %d deliveries", res.Missed)
	}
	if res.SpuriousLinks != 0 {
		t.Errorf("exact tables forwarded spuriously %d times", res.SpuriousLinks)
	}
	// Deliveries = number of (doc, interested consumer) pairs.
	want := 0
	for _, d := range docs {
		for _, p := range subs {
			if pattern.Matches(d, p) {
				want++
			}
		}
	}
	if res.Deliveries != want {
		t.Errorf("Deliveries = %d, want %d", res.Deliveries, want)
	}
	if bt.Brokers() != 7 {
		t.Errorf("Brokers = %d, want 7 (complete binary, depth 3)", bt.Brokers())
	}
}

func TestBrokerTreeAggregatedTablesTradeoff(t *testing.T) {
	docs := docsOf(t,
		"a(b)", "a(b)", "a(c)", "a(c)", "x(y)", "x(z)", "a(b,c)", "x(y,z)")
	subs := subsOf("/a/b", "/a/c", "/a[b][c]", "//y", "//z", "/x[y]", "/x/z", "//b")
	est := treeEstimator(t, docs)

	exact, err := NewBrokerTree(subs, BrokerTreeOptions{Fanout: 2, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewBrokerTree(subs, BrokerTreeOptions{Fanout: 2, Depth: 3, TableLimit: 1, Estimator: est})
	if err != nil {
		t.Fatal(err)
	}
	exactRes := exact.Run(docs)
	aggRes := agg.Run(docs)

	// Aggregation must shrink tables and never miss deliveries.
	if agg.TableSize() >= exact.TableSize() {
		t.Errorf("aggregated tables not smaller: %d vs %d", agg.TableSize(), exact.TableSize())
	}
	if aggRes.Missed != 0 {
		t.Errorf("aggregated routing missed %d deliveries", aggRes.Missed)
	}
	if aggRes.Deliveries != exactRes.Deliveries {
		t.Errorf("deliveries differ: %d vs %d", aggRes.Deliveries, exactRes.Deliveries)
	}
	// The cost shows up as spurious link messages (possibly zero on
	// tiny workloads, but never negative relative to exact).
	if aggRes.LinkMessages < exactRes.LinkMessages {
		t.Errorf("aggregation cannot reduce link messages below exact: %d vs %d",
			aggRes.LinkMessages, exactRes.LinkMessages)
	}
}

func TestBrokerTreeSingleBroker(t *testing.T) {
	docs := docsOf(t, "a(b)")
	subs := subsOf("/a/b", "//zzz")
	bt, err := NewBrokerTree(subs, BrokerTreeOptions{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := bt.Run(docs)
	if bt.Brokers() != 1 || res.LinkMessages != 0 {
		t.Errorf("single broker: brokers=%d links=%d", bt.Brokers(), res.LinkMessages)
	}
	if res.Deliveries != 1 {
		t.Errorf("Deliveries = %d, want 1", res.Deliveries)
	}
}

func TestBrokerTreeRequiresEstimatorForAggregation(t *testing.T) {
	if _, err := NewBrokerTree(subsOf("/a"), BrokerTreeOptions{TableLimit: 1}); err == nil {
		t.Error("aggregation without estimator should error")
	}
}

func TestTreeResultString(t *testing.T) {
	var r TreeResult
	if r.String() == "" {
		t.Error("empty TreeResult string")
	}
}
