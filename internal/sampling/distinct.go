package sampling

// DistinctSample is a bounded-size sample of a set of uint64 identifiers
// maintained with Gibbons' distinct-sampling scheme: the sample keeps
// exactly the inserted elements whose hash level is ≥ the current level,
// and doubles the sampling rate (level++) whenever the sample overflows
// its capacity. The cardinality of the underlying set is estimated as
// |sample| · 2^level.
//
// All samples combined with Union/Intersect must share the same *Hasher.
// Because membership at a level is a deterministic function of the
// element, the union (intersection) of two samples subsampled to a common
// level is exactly the distinct sample of the union (intersection) of the
// underlying sets at that level — this is what makes the set-expression
// estimators of Ganguly et al. work.
type DistinctSample struct {
	h     *Hasher
	cap   int
	level int
	ids   map[uint64]struct{}
}

// NewDistinctSample returns an empty sample with the given capacity
// (maximum number of retained identifiers). Capacity must be ≥ 1.
func NewDistinctSample(h *Hasher, capacity int) *DistinctSample {
	if capacity < 1 {
		panic("sampling: distinct sample capacity must be >= 1")
	}
	return &DistinctSample{h: h, cap: capacity, ids: make(map[uint64]struct{})}
}

// Add inserts x into the sampled set.
func (s *DistinctSample) Add(x uint64) {
	if s.h.Level(x) < s.level {
		return
	}
	s.ids[x] = struct{}{}
	for len(s.ids) > s.cap {
		s.subsample()
	}
}

// Remove deletes x from the sample if present. Note that removal from a
// distinct sample is best-effort: if x was subsampled away earlier it is
// simply absent.
func (s *DistinctSample) Remove(x uint64) {
	delete(s.ids, x)
}

// subsample advances to the next level, dropping elements whose hash
// level is below it.
func (s *DistinctSample) subsample() {
	s.level++
	for x := range s.ids {
		if s.h.Level(x) < s.level {
			delete(s.ids, x)
		}
	}
}

// Level returns the current sampling level (sampling probability 2^-level).
func (s *DistinctSample) Level() int { return s.level }

// ForceLevel raises the sampling level to at least l, subsampling the
// retained elements accordingly. Lowering the level is impossible
// (discarded elements cannot be recovered); calls with l ≤ Level() are
// no-ops.
func (s *DistinctSample) ForceLevel(l int) {
	for s.level < l {
		s.subsample()
	}
}

// Size returns the number of identifiers currently retained.
func (s *DistinctSample) Size() int { return len(s.ids) }

// Capacity returns the maximum number of retained identifiers.
func (s *DistinctSample) Capacity() int { return s.cap }

// Estimate returns the estimated cardinality of the underlying set:
// |sample| · 2^level.
func (s *DistinctSample) Estimate() float64 {
	return float64(len(s.ids)) * float64(uint64(1)<<uint(s.level))
}

// Contains reports whether x is currently retained in the sample.
func (s *DistinctSample) Contains(x uint64) bool {
	_, ok := s.ids[x]
	return ok
}

// IDs returns the retained identifiers in unspecified order.
func (s *DistinctSample) IDs() []uint64 {
	out := make([]uint64, 0, len(s.ids))
	for x := range s.ids {
		out = append(out, x)
	}
	return out
}

// Clone returns a deep copy of the sample.
func (s *DistinctSample) Clone() *DistinctSample {
	out := &DistinctSample{h: s.h, cap: s.cap, level: s.level, ids: make(map[uint64]struct{}, len(s.ids))}
	for x := range s.ids {
		out.ids[x] = struct{}{}
	}
	return out
}

// UnionInto merges other into s (s ← sample of union): the level becomes
// max of the two levels, both sides are subsampled to it, and the result
// is subsampled further if it exceeds s's capacity.
func (s *DistinctSample) UnionInto(other *DistinctSample) {
	if s.h != other.h {
		panic("sampling: union of samples with different hashers")
	}
	if other.level > s.level {
		s.level = other.level
		for x := range s.ids {
			if s.h.Level(x) < s.level {
				delete(s.ids, x)
			}
		}
	}
	for x := range other.ids {
		if s.h.Level(x) >= s.level {
			s.ids[x] = struct{}{}
		}
	}
	for len(s.ids) > s.cap {
		s.subsample()
	}
}

// Union returns a new sample of the union of the two underlying sets,
// with capacity equal to s's capacity.
func (s *DistinctSample) Union(other *DistinctSample) *DistinctSample {
	out := s.Clone()
	out.UnionInto(other)
	return out
}

// Intersect returns a new sample of the intersection of the two
// underlying sets: both sides are subsampled to the max level and the
// retained identifiers are intersected. The result's capacity is s's.
func (s *DistinctSample) Intersect(other *DistinctSample) *DistinctSample {
	if s.h != other.h {
		panic("sampling: intersection of samples with different hashers")
	}
	l := s.level
	if other.level > l {
		l = other.level
	}
	small, big := s, other
	if len(big.ids) < len(small.ids) {
		small, big = big, small
	}
	out := &DistinctSample{h: s.h, cap: s.cap, level: l, ids: make(map[uint64]struct{})}
	for x := range small.ids {
		if s.h.Level(x) < l {
			continue
		}
		if _, ok := big.ids[x]; ok {
			out.ids[x] = struct{}{}
		}
	}
	return out
}

// JaccardEstimate estimates |A∩B| / |A∪B| for the underlying sets.
// Returns 0 when the union estimate is 0.
func (s *DistinctSample) JaccardEstimate(other *DistinctSample) float64 {
	u := s.Union(other).Estimate()
	if u == 0 {
		return 0
	}
	return s.Intersect(other).Estimate() / u
}
