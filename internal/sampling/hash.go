// Package sampling implements the two stream-sampling substrates of the
// paper: Vitter's reservoir sampling (TOMS'85) for document-level
// samples, and Gibbons' distinct sampling (VLDB'01) with the
// set-expression estimators of Ganguly, Garofalakis and Rastogi
// (SIGMOD'03) for per-node hash samples.
package sampling

// Hasher maps document identifiers to sampling levels such that
// Pr[Level(x) ≥ l] = 2^-l. All hash samples participating in union or
// intersection estimation must share the same Hasher; the paper's
// synopsis therefore carries a single Hasher for all nodes.
type Hasher struct {
	seed uint64
}

// NewHasher returns a Hasher derived from the given seed. Two Hashers
// with the same seed are interchangeable.
func NewHasher(seed uint64) *Hasher {
	return &Hasher{seed: splitmix64(seed ^ 0x9e3779b97f4a7c15)}
}

// Hash returns a 64-bit mix of x. The mapping is fixed for the lifetime
// of the Hasher.
func (h *Hasher) Hash(x uint64) uint64 {
	return splitmix64(x ^ h.seed)
}

// Level returns the sampling level of x: the number of trailing zero
// bits of Hash(x). Levels follow a geometric distribution:
// Pr[Level ≥ l] = 2^-l for l ≤ 63.
func (h *Hasher) Level(x uint64) int {
	v := h.Hash(x)
	if v == 0 {
		return 64
	}
	l := 0
	for v&1 == 0 {
		l++
		v >>= 1
	}
	return l
}

// splitmix64 is the SplitMix64 finalizer: a fast, well-distributed
// 64-bit mixing function (Steele, Lea & Flood, OOPSLA'14).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
