package sampling

import "math/rand"

// Reservoir maintains a fixed-size uniform random sample of a stream of
// uint64 identifiers using Vitter's Algorithm R: the k-th element is
// included with probability min{1, s/k}, replacing a uniformly random
// current member when the reservoir is full.
//
// The paper's "Sets" matching-set representation samples documents at
// this level: the synopsis is maintained from exactly the sampled
// documents, and an eviction notifies the synopsis to remove the evicted
// document everywhere.
type Reservoir struct {
	rng  *rand.Rand
	cap  int
	seen int
	ids  []uint64
	pos  map[uint64]int
}

// NewReservoir returns an empty reservoir of the given capacity, seeded
// deterministically.
func NewReservoir(seed int64, capacity int) *Reservoir {
	if capacity < 1 {
		panic("sampling: reservoir capacity must be >= 1")
	}
	return &Reservoir{
		rng: rand.New(rand.NewSource(seed)),
		cap: capacity,
		pos: make(map[uint64]int, capacity),
	}
}

// Offer presents the next stream element x to the reservoir. It returns
// (accepted, evicted, hadEviction): whether x was kept, and if a current
// member was displaced to make room, which one.
func (r *Reservoir) Offer(x uint64) (accepted bool, evicted uint64, hadEviction bool) {
	r.seen++
	if len(r.ids) < r.cap {
		r.pos[x] = len(r.ids)
		r.ids = append(r.ids, x)
		return true, 0, false
	}
	// Keep with probability cap/seen.
	if r.rng.Intn(r.seen) >= r.cap {
		return false, 0, false
	}
	victim := r.rng.Intn(r.cap)
	old := r.ids[victim]
	delete(r.pos, old)
	r.ids[victim] = x
	r.pos[x] = victim
	return true, old, true
}

// RestoreReservoir rebuilds a reservoir from a saved state: the sampled
// identifiers and the stream position. The random source is freshly
// seeded (the original generator state is not serializable), so the
// continuation is statistically — not bitwise — equivalent to the
// original stream. It panics if len(ids) exceeds the capacity.
func RestoreReservoir(seed int64, capacity int, ids []uint64, seen int) *Reservoir {
	if len(ids) > capacity {
		panic("sampling: restored sample exceeds capacity")
	}
	r := NewReservoir(seed, capacity)
	r.seen = seen
	r.ids = append(r.ids, ids...)
	for i, x := range r.ids {
		r.pos[x] = i
	}
	return r
}

// Contains reports whether x is currently in the sample.
func (r *Reservoir) Contains(x uint64) bool {
	_, ok := r.pos[x]
	return ok
}

// Size returns the current number of sampled elements.
func (r *Reservoir) Size() int { return len(r.ids) }

// Seen returns the number of stream elements offered so far.
func (r *Reservoir) Seen() int { return r.seen }

// Capacity returns the reservoir capacity.
func (r *Reservoir) Capacity() int { return r.cap }

// IDs returns the sampled identifiers in unspecified order. The returned
// slice is shared; callers must not modify it.
func (r *Reservoir) IDs() []uint64 { return r.ids }
