package sampling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHasherDeterministic(t *testing.T) {
	a, b := NewHasher(42), NewHasher(42)
	c := NewHasher(43)
	diff := false
	for x := uint64(0); x < 100; x++ {
		if a.Hash(x) != b.Hash(x) {
			t.Fatalf("same-seed hashers disagree at %d", x)
		}
		if a.Hash(x) != c.Hash(x) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical hash functions")
	}
}

func TestLevelGeometric(t *testing.T) {
	// Pr[Level(x) >= l] should be ~2^-l.
	h := NewHasher(1)
	const n = 1 << 17
	counts := make([]int, 8)
	for x := uint64(0); x < n; x++ {
		l := h.Level(x)
		for i := 0; i < len(counts) && i <= l; i++ {
			counts[i]++
		}
	}
	for l := 0; l < len(counts); l++ {
		got := float64(counts[l]) / n
		want := math.Pow(2, -float64(l))
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("Pr[level >= %d] = %v, want ~%v", l, got, want)
		}
	}
}

func TestDistinctSampleBound(t *testing.T) {
	h := NewHasher(5)
	s := NewDistinctSample(h, 32)
	for x := uint64(0); x < 10000; x++ {
		s.Add(x)
		if s.Size() > s.Capacity() {
			t.Fatalf("sample size %d exceeds capacity %d", s.Size(), s.Capacity())
		}
	}
	if s.Level() == 0 {
		t.Error("level should have advanced beyond 0 after overflow")
	}
}

func TestDistinctSampleExactWhenSmall(t *testing.T) {
	h := NewHasher(5)
	s := NewDistinctSample(h, 100)
	for x := uint64(0); x < 50; x++ {
		s.Add(x)
	}
	if s.Level() != 0 || s.Size() != 50 {
		t.Fatalf("level=%d size=%d; expected lossless retention", s.Level(), s.Size())
	}
	if got := s.Estimate(); got != 50 {
		t.Errorf("Estimate = %v, want 50", got)
	}
}

func TestDistinctEstimateAccuracy(t *testing.T) {
	// Average relative error over several seeds should be modest for a
	// 256-element sample of a 20k-element set.
	const trueCard = 20000
	var relErrSum float64
	const seeds = 10
	for seed := int64(0); seed < seeds; seed++ {
		h := NewHasher(uint64(seed) + 100)
		s := NewDistinctSample(h, 256)
		for x := uint64(0); x < trueCard; x++ {
			s.Add(x * 7919) // arbitrary distinct ids
		}
		relErrSum += math.Abs(s.Estimate()-trueCard) / trueCard
	}
	if avg := relErrSum / seeds; avg > 0.15 {
		t.Errorf("average relative cardinality error %v too high", avg)
	}
}

func TestDistinctAddIdempotent(t *testing.T) {
	h := NewHasher(9)
	s := NewDistinctSample(h, 10)
	s.Add(1)
	s.Add(1)
	if s.Size() != 1 {
		t.Errorf("Size = %d, want 1", s.Size())
	}
}

func TestUnionMatchesCombinedSet(t *testing.T) {
	// With capacity large enough to avoid subsampling, union must be
	// exact.
	h := NewHasher(11)
	a := NewDistinctSample(h, 1000)
	b := NewDistinctSample(h, 1000)
	for x := uint64(0); x < 300; x++ {
		a.Add(x)
	}
	for x := uint64(200); x < 500; x++ {
		b.Add(x)
	}
	u := a.Union(b)
	if got := u.Estimate(); got != 500 {
		t.Errorf("union estimate = %v, want 500", got)
	}
	i := a.Intersect(b)
	if got := i.Estimate(); got != 100 {
		t.Errorf("intersect estimate = %v, want 100", got)
	}
}

func TestUnionCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHasher(uint64(seed))
		a := NewDistinctSample(h, 32)
		b := NewDistinctSample(h, 32)
		for i := 0; i < 500; i++ {
			x := uint64(rng.Intn(2000))
			if rng.Intn(2) == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		ab := a.Union(b)
		ba := b.Union(a)
		// Same level and same retained set (capacities equal).
		if ab.Level() != ba.Level() || ab.Size() != ba.Size() {
			return false
		}
		for _, x := range ab.IDs() {
			if !ba.Contains(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUnionIdempotent(t *testing.T) {
	h := NewHasher(3)
	a := NewDistinctSample(h, 64)
	for x := uint64(0); x < 1000; x++ {
		a.Add(x)
	}
	u := a.Union(a)
	if u.Level() != a.Level() || u.Size() != a.Size() {
		t.Errorf("A ∪ A differs from A: level %d vs %d, size %d vs %d",
			u.Level(), a.Level(), u.Size(), a.Size())
	}
}

func TestIntersectSubsetOfBoth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHasher(uint64(seed) * 31)
		a := NewDistinctSample(h, 48)
		b := NewDistinctSample(h, 48)
		for i := 0; i < 800; i++ {
			x := uint64(rng.Intn(1000))
			if rng.Intn(3) != 0 {
				a.Add(x)
			}
			if rng.Intn(3) != 0 {
				b.Add(x)
			}
		}
		i := a.Intersect(b)
		l := i.Level()
		for _, x := range i.IDs() {
			if h.Level(x) < l {
				return false
			}
			// Each retained element must be in both inputs (when at
			// sufficient level).
			if !a.Contains(x) || !b.Contains(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIntersectionEstimateAccuracy(t *testing.T) {
	// |A| = |B| = 10000, |A∩B| = 5000; estimates from 512-capacity
	// samples should land near 5000 on average.
	var sum float64
	const seeds = 10
	for seed := uint64(0); seed < seeds; seed++ {
		h := NewHasher(seed + 77)
		a := NewDistinctSample(h, 512)
		b := NewDistinctSample(h, 512)
		for x := uint64(0); x < 10000; x++ {
			a.Add(x)
		}
		for x := uint64(5000); x < 15000; x++ {
			b.Add(x)
		}
		sum += a.Intersect(b).Estimate()
	}
	avg := sum / seeds
	if math.Abs(avg-5000)/5000 > 0.2 {
		t.Errorf("average intersection estimate %v, want ~5000", avg)
	}
}

func TestDifferentHasherPanics(t *testing.T) {
	a := NewDistinctSample(NewHasher(1), 8)
	b := NewDistinctSample(NewHasher(2), 8)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mixed hashers")
		}
	}()
	a.Union(b)
}

func TestDistinctRemoveAndForceLevel(t *testing.T) {
	h := NewHasher(21)
	s := NewDistinctSample(h, 100)
	for x := uint64(0); x < 50; x++ {
		s.Add(x)
	}
	s.Remove(3)
	if s.Contains(3) || s.Size() != 49 {
		t.Errorf("Remove failed: size=%d", s.Size())
	}
	s.Remove(3) // absent: no-op
	if s.Size() != 49 {
		t.Error("double remove changed size")
	}
	before := s.Size()
	s.ForceLevel(2)
	if s.Level() != 2 {
		t.Errorf("Level = %d, want 2", s.Level())
	}
	if s.Size() > before {
		t.Error("ForceLevel grew the sample")
	}
	for _, x := range s.IDs() {
		if h.Level(x) < 2 {
			t.Errorf("element %d below forced level", x)
		}
	}
	// Lowering is a no-op.
	s.ForceLevel(1)
	if s.Level() != 2 {
		t.Error("ForceLevel lowered the level")
	}
}

func TestJaccardEstimate(t *testing.T) {
	h := NewHasher(8)
	a := NewDistinctSample(h, 1000)
	b := NewDistinctSample(h, 1000)
	for x := uint64(0); x < 200; x++ {
		a.Add(x)
	}
	for x := uint64(100); x < 300; x++ {
		b.Add(x)
	}
	// Exact below capacity: |∩| = 100, |∪| = 300.
	if got := a.JaccardEstimate(b); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Jaccard = %v, want 1/3", got)
	}
	empty := NewDistinctSample(h, 10)
	if got := empty.JaccardEstimate(NewDistinctSample(h, 10)); got != 0 {
		t.Errorf("empty Jaccard = %v, want 0", got)
	}
}

func TestConstructorPanics(t *testing.T) {
	h := NewHasher(1)
	for _, f := range []func(){
		func() { NewDistinctSample(h, 0) },
		func() { NewReservoir(1, 0) },
		func() { RestoreReservoir(1, 2, []uint64{1, 2, 3}, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRestoreReservoir(t *testing.T) {
	r := RestoreReservoir(9, 5, []uint64{10, 20, 30}, 100)
	if r.Size() != 3 || r.Seen() != 100 || r.Capacity() != 5 {
		t.Fatalf("restored: size=%d seen=%d cap=%d", r.Size(), r.Seen(), r.Capacity())
	}
	if !r.Contains(20) || r.Contains(99) {
		t.Error("membership wrong after restore")
	}
	// Continued streaming respects the restored position: acceptance
	// probability is now low (5/100+), so most offers are rejected, but
	// the reservoir stays consistent.
	for x := uint64(1000); x < 1100; x++ {
		acc, ev, hadEv := r.Offer(x)
		if hadEv && !acc {
			t.Fatal("eviction without acceptance")
		}
		_ = ev
	}
	if r.Size() > 5 {
		t.Errorf("size %d exceeds capacity", r.Size())
	}
}

func TestReservoirFillsToCapacity(t *testing.T) {
	r := NewReservoir(1, 10)
	for x := uint64(0); x < 5; x++ {
		acc, _, evict := r.Offer(x)
		if !acc || evict {
			t.Fatal("initial fill must accept without eviction")
		}
	}
	if r.Size() != 5 || r.Seen() != 5 {
		t.Fatalf("size=%d seen=%d", r.Size(), r.Seen())
	}
	for x := uint64(5); x < 1000; x++ {
		r.Offer(x)
	}
	if r.Size() != 10 {
		t.Errorf("size = %d, want capacity 10", r.Size())
	}
	if r.Seen() != 1000 {
		t.Errorf("seen = %d, want 1000", r.Seen())
	}
}

func TestReservoirEvictionConsistency(t *testing.T) {
	r := NewReservoir(3, 4)
	members := make(map[uint64]bool)
	for x := uint64(0); x < 500; x++ {
		acc, ev, hadEv := r.Offer(x)
		if acc {
			members[x] = true
		}
		if hadEv {
			if !members[ev] {
				t.Fatalf("evicted %d was not a member", ev)
			}
			delete(members, ev)
		}
	}
	if len(members) != r.Size() {
		t.Fatalf("tracked %d members, reservoir has %d", len(members), r.Size())
	}
	for x := range members {
		if !r.Contains(x) {
			t.Fatalf("member %d missing from reservoir", x)
		}
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of the first 100 elements should survive in a 10-slot
	// reservoir with probability 10/100 = 0.1.
	const n, capacity, trials = 100, 10, 3000
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(int64(trial), capacity)
		for x := uint64(0); x < n; x++ {
			r.Offer(x)
		}
		for _, x := range r.IDs() {
			counts[x]++
		}
	}
	want := float64(capacity) / n
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-want) > 0.03 {
			t.Errorf("element %d inclusion prob %v, want ~%v", i, got, want)
		}
	}
}
