package selectivity

import (
	"math/rand"
	"testing"

	"treesim/internal/matchset"
	"treesim/internal/pattern"
	"treesim/internal/synopsis"
	"treesim/internal/xmltree"
)

// Pruning operations have one-sided effects on SEL estimates:
//
//   - folding a leaf merges its matching set upward, so estimates can
//     only grow (the folded node's full set over-approximates the
//     leaf's);
//   - deleting a leaf removes matching information, so estimates can
//     only shrink;
//   - merging two nodes stores the intersection of their full sets, so
//     estimates can only shrink.
//
// These directional properties hold for every pattern and make strong
// property tests: they pin down exactly how compression trades accuracy.

func randomCorpusSynopsis(rng *rand.Rand, seed int64) *synopsis.Synopsis {
	s := synopsis.New(synopsis.Options{Kind: matchset.KindSets, SetCapacity: 1 << 20, Seed: seed})
	labels := []string{"a", "b", "c", "d"}
	var gen func(depth int) *xmltree.Node
	gen = func(depth int) *xmltree.Node {
		n := &xmltree.Node{Label: labels[rng.Intn(len(labels))]}
		if depth < 4 {
			for i := 0; i < rng.Intn(3); i++ {
				n.Children = append(n.Children, gen(depth+1))
			}
		}
		return n
	}
	for i := 0; i < 30; i++ {
		s.Insert(&xmltree.Tree{Root: gen(1)})
	}
	return s
}

func randomPatterns(rng *rand.Rand, n int) []*pattern.Pattern {
	labels := []string{"a", "b", "c", "d"}
	var build func(depth int, allowDesc bool) *pattern.Node
	build = func(depth int, allowDesc bool) *pattern.Node {
		r := rng.Float64()
		var nd *pattern.Node
		switch {
		case allowDesc && r < 0.2:
			nd = &pattern.Node{Label: pattern.Descendant}
			nd.Children = []*pattern.Node{build(depth+1, false)}
			return nd
		case r < 0.3:
			nd = &pattern.Node{Label: pattern.Wildcard}
		default:
			nd = &pattern.Node{Label: labels[rng.Intn(len(labels))]}
		}
		if depth < 3 {
			for i := 0; i < rng.Intn(3); i++ {
				nd.Children = append(nd.Children, build(depth+1, true))
			}
		}
		return nd
	}
	out := make([]*pattern.Pattern, n)
	for i := range out {
		p := pattern.New()
		p.Root.Children = []*pattern.Node{build(1, true)}
		out[i] = p
	}
	return out
}

func TestFoldOverApproximates(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := randomCorpusSynopsis(rng, seed)
		pats := randomPatterns(rng, 30)
		est := New(s)
		before := make([]float64, len(pats))
		for i, p := range pats {
			before[i] = est.P(p)
		}
		cands := s.FoldCandidates()
		if len(cands) == 0 {
			continue
		}
		if err := s.FoldLeaf(cands[rng.Intn(len(cands))].Leaf); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, p := range pats {
			after := est.P(p)
			if after < before[i]-1e-9 {
				t.Fatalf("seed %d: fold decreased P(%s): %v -> %v", seed, p, before[i], after)
			}
		}
	}
}

func TestDeleteUnderApproximates(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		s := randomCorpusSynopsis(rng, seed)
		pats := randomPatterns(rng, 30)
		est := New(s)
		before := make([]float64, len(pats))
		for i, p := range pats {
			before[i] = est.P(p)
		}
		cands := s.DeleteCandidates()
		if len(cands) == 0 {
			continue
		}
		if err := s.DeleteLeaf(cands[rng.Intn(len(cands))]); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, p := range pats {
			after := est.P(p)
			if after > before[i]+1e-9 {
				t.Fatalf("seed %d: delete increased P(%s): %v -> %v", seed, p, before[i], after)
			}
		}
	}
}

func TestMergeUnderApproximates(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed + 200))
		s := randomCorpusSynopsis(rng, seed)
		pats := randomPatterns(rng, 30)
		est := New(s)
		before := make([]float64, len(pats))
		for i, p := range pats {
			before[i] = est.P(p)
		}
		cands := s.MergeCandidates()
		if len(cands) == 0 {
			continue
		}
		c := cands[rng.Intn(len(cands))]
		if err := s.MergeNodes(c.A, c.B); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, p := range pats {
			after := est.P(p)
			if after > before[i]+1e-9 {
				t.Fatalf("seed %d: merge increased P(%s): %v -> %v (pair %s#%d,%s#%d score %v)",
					seed, p, before[i], after, c.A.Label(), c.A.ID(), c.B.Label(), c.B.ID(), c.Score)
			}
		}
	}
}

func TestLosslessFoldPreservesEstimates(t *testing.T) {
	// A fold of a leaf with Jaccard 1 against its parent must not
	// change any estimate.
	docs := []string{"a(b(c))", "a(b(c))", "a(x)"}
	s := synopsis.New(synopsis.Options{Kind: matchset.KindSets, SetCapacity: 1 << 20, Seed: 1})
	for _, d := range docs {
		tr, err := xmltree.ParseCompact(d)
		if err != nil {
			t.Fatal(err)
		}
		s.Insert(tr)
	}
	est := New(s)
	queries := []string{"/a", "/a/b", "/a/b/c", "//c", "/a[b/c][x]", "/a/x"}
	before := make(map[string]float64)
	for _, q := range queries {
		before[q] = est.P(pattern.MustParse(q))
	}
	// c (set {0,1}) has Jaccard 1 with parent b (set {0,1}): lossless.
	cands := s.FoldCandidates()
	if len(cands) == 0 || cands[0].Score < 0.999 {
		t.Fatalf("expected a lossless fold candidate, got %v", cands)
	}
	if err := s.FoldLeaf(cands[0].Leaf); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if got := est.P(pattern.MustParse(q)); got != before[q] {
			t.Errorf("lossless fold changed P(%s): %v -> %v", q, before[q], got)
		}
	}
}
