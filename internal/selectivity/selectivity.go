// Package selectivity implements the paper's recursive selectivity
// algorithm (Section 4, Algorithms 1 and 2): SEL(v,u) parses a tree
// pattern against the document synopsis and returns the (approximate)
// matching set of documents satisfying the pattern; P(p) normalizes its
// cardinality by the root matching set.
//
// The algorithm is representation-agnostic: all set operations go
// through the matchset.Value algebra, so Counters (max/product), Sets
// and Hashes all evaluate through the same code path, exactly as the
// paper prescribes.
package selectivity

import (
	"sync"

	"treesim/internal/matchset"
	"treesim/internal/pattern"
	"treesim/internal/synopsis"
)

// Estimator evaluates tree-pattern selectivities over a synopsis.
// Evaluations are independent: any number of them may run concurrently
// (the per-query working state comes from an internal pool).
type Estimator struct {
	syn  *synopsis.Synopsis
	pool sync.Pool // *evaluator, reset per query
}

// New returns an estimator over the given synopsis. The synopsis may
// keep evolving; evaluations always reflect its current state.
func New(s *synopsis.Synopsis) *Estimator {
	return &Estimator{syn: s}
}

// Synopsis returns the underlying synopsis.
func (e *Estimator) Synopsis() *synopsis.Synopsis { return e.syn }

// Evaluate runs SEL over the synopsis root and the pattern root and
// returns the estimated matching set of documents satisfying p.
func (e *Estimator) Evaluate(p *pattern.Pattern) matchset.Value {
	ev, _ := e.pool.Get().(*evaluator)
	if ev == nil {
		ev = &evaluator{}
	}
	ev.reset(e.syn, p)
	res := ev.sel(e.syn.Root(), 0)
	e.pool.Put(ev)
	return res
}

// Clamp01 clamps a probability estimate to [0, 1] — sampling noise in
// the numerator and denominator estimates can otherwise push a ratio
// slightly outside. Shared by every consumer of probability estimates
// (the overlay's advertised selectivity digests included).
func Clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// P estimates the selectivity of p: the probability that a document of
// the observed stream matches p (Algorithm 2), clamped to [0, 1].
func (e *Estimator) P(p *pattern.Pattern) float64 {
	den := e.syn.RootCard()
	if den == 0 {
		return 0
	}
	return Clamp01(e.Evaluate(p).Card() / den)
}

// PAnd estimates the conjunction probability P(p ∧ q) by evaluating the
// root-merged pattern (Section 4).
func (e *Estimator) PAnd(p, q *pattern.Pattern) float64 {
	return e.P(pattern.MergeRoots(p, q))
}

// EvaluateCard converts a matching-set value from Evaluate into the
// probability of Algorithm 2 (clamped to [0, 1]).
func (e *Estimator) EvaluateCard(v matchset.Value) float64 {
	den := e.syn.RootCard()
	if den == 0 {
		return 0
	}
	return Clamp01(v.Card() / den)
}

// IntersectP is EvaluateCard(a.Intersect(b)) without materializing the
// intersection — the similarity hot paths (incremental rows, matrix
// rebuilds) need one conjunction probability per subscription pair and
// would discard the intersection value immediately.
func (e *Estimator) IntersectP(a, b matchset.Value) float64 {
	den := e.syn.RootCard()
	if den == 0 {
		return 0
	}
	return Clamp01(matchset.IntersectCard(a, b) / den)
}

// Note on conjunctions: SEL over a root-merged pattern intersects the
// root-level constraint sets of both patterns, so
// SEL(p ∧ q) = SEL(p) ∩ SEL(q) holds exactly (for counters, the product
// algebra is likewise associative). Batch consumers exploit this: each
// pattern is evaluated once and pairwise conjunctions reduce to
// matching-set intersections — see core.SimilarityMatrix.

// POr estimates P(p ∨ q) by inclusion–exclusion, clamped to [0, 1].
func (e *Estimator) POr(p, q *pattern.Pattern) float64 {
	return Clamp01(e.P(p) + e.P(q) - e.PAnd(p, q))
}

// pnode is a pattern node prepared for evaluation: the node itself plus
// the evaluator-local indices of its children, so the hot recursion
// never consults a map to identify pattern nodes.
type pnode struct {
	n        *pattern.Node
	children []int
}

// evaluator carries the per-query working state. It is pooled by the
// Estimator: the flat memo table and the pattern index are reused
// across queries, so a warmed-up estimator evaluates without building
// maps. The memo is indexed [v.Slot()·stride + u-index] — slots are
// dense and recycled, so the table scales with the live synopsis, not
// with how many nodes ever existed; nil marks an uncomputed entry (SEL
// never returns a nil value).
type evaluator struct {
	syn    *synopsis.Synopsis
	empty  matchset.Value
	pnodes []pnode
	stride int
	memo   []matchset.Value
}

func (ev *evaluator) reset(syn *synopsis.Synopsis, p *pattern.Pattern) {
	ev.syn = syn
	ev.empty = syn.EmptyValue()
	ev.pnodes = ev.pnodes[:0]
	ev.number(p.Root)
	ev.stride = len(ev.pnodes)
	need := syn.SlotBound() * ev.stride
	if cap(ev.memo) < need {
		ev.memo = make([]matchset.Value, need)
	} else {
		ev.memo = ev.memo[:need]
		clear(ev.memo)
	}
}

func (ev *evaluator) number(n *pattern.Node) int {
	i := len(ev.pnodes)
	ev.pnodes = append(ev.pnodes, pnode{n: n})
	var kids []int
	if len(n.Children) > 0 {
		kids = make([]int, 0, len(n.Children))
		for _, c := range n.Children {
			kids = append(kids, ev.number(c))
		}
	}
	ev.pnodes[i].children = kids
	return i
}

// sel is Algorithm 1. SEL(v,u) is the set of documents for which pattern
// node u is matched at synopsis node v with all of u's subtree
// constraints satisfied below v. Memoization on (v,u) pairs bounds the
// work by O(|HS|·|p|) even with descendant operators.
func (ev *evaluator) sel(v *synopsis.Node, ui int) matchset.Value {
	idx := v.Slot()*ev.stride + ui
	if r := ev.memo[idx]; r != nil {
		return r
	}
	res := ev.selCompute(v, ui)
	ev.memo[idx] = res
	return res
}

func (ev *evaluator) selCompute(v *synopsis.Node, ui int) matchset.Value {
	u := ev.pnodes[ui].n
	// Line 1: label compatibility (label(v) ⪯ label(u)).
	if !pattern.LabelLeq(v.Label().Tag, u.Label) {
		return ev.empty
	}
	// Line 3: a pattern leaf is matched by v itself — all documents
	// containing v's path qualify.
	if u.IsLeaf() {
		return ev.syn.Full(v)
	}
	if u.Label != pattern.Descendant {
		// Line 6: a synopsis dead end (no children, no folded
		// structure) cannot satisfy u's child constraints.
		if v.IsLeaf() && v.Label().IsPlain() {
			return ev.empty
		}
		// Line 9: ⋂ over pattern children of (⋃ over synopsis children),
		// extended with folded-label contributions: if u' embeds in a
		// nested label of v, every document in S(v) (approximately)
		// satisfies u' below v.
		var res matchset.Value
		for _, ci := range ev.pnodes[ui].children {
			uni := ev.empty
			for _, v2 := range v.Children() {
				uni = uni.Union(ev.sel(v2, ci))
			}
			u2 := ev.pnodes[ci].n
			for _, nt := range v.Label().Nested {
				if ev.bsel(nt, u2) {
					uni = uni.Union(ev.syn.Full(v))
					break
				}
			}
			if res == nil {
				res = uni
			} else {
				res = res.Intersect(uni)
			}
			if res.IsZero() {
				return res
			}
		}
		return res
	}
	// Lines 11–14: descendant operator. S0 maps "//" to a path of length
	// zero (u's children matched at v itself); S≥1 pushes "//" down to
	// v's children and into folded labels.
	var s0 matchset.Value
	for _, ci := range ev.pnodes[ui].children {
		x := ev.sel(v, ci)
		if s0 == nil {
			s0 = x
		} else {
			s0 = s0.Intersect(x)
		}
	}
	if s0 == nil {
		s0 = ev.empty
	}
	s1 := ev.empty
	for _, v2 := range v.Children() {
		s1 = s1.Union(ev.sel(v2, ui))
	}
	for _, nt := range v.Label().Nested {
		if ev.bselDesc(nt, u) {
			s1 = s1.Union(ev.syn.Full(v))
			break
		}
	}
	return s0.Union(s1)
}

// bsel is the boolean analogue of sel over a folded label tree: it
// decides whether pattern node u can be matched at label-tree node nt.
// Folded structure carries no per-level matching sets (they were unioned
// into the folded node), so the answer is structural.
func (ev *evaluator) bsel(nt *synopsis.LabelTree, u *pattern.Node) bool {
	if u.Label == pattern.Descendant {
		return ev.bselDesc(nt, u)
	}
	if !pattern.LabelLeq(nt.Tag, u.Label) {
		return false
	}
	for _, u2 := range u.Children {
		// Each pattern child must be matched within some folded child of
		// nt; bselDesc's zero-length case already covers a "//" child
		// whose constraints bind directly at that folded child.
		ok := false
		for _, nt2 := range nt.Nested {
			if ev.bsel(nt2, u2) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// bselDesc decides whether a descendant operator u ("//") can map into
// the label tree rooted at nt: either its child constraints are matched
// at nt itself (zero length) or it descends into some nested child.
func (ev *evaluator) bselDesc(nt *synopsis.LabelTree, u *pattern.Node) bool {
	all := true
	for _, u2 := range u.Children {
		if !ev.bsel(nt, u2) {
			all = false
			break
		}
	}
	if all {
		return true
	}
	for _, nt2 := range nt.Nested {
		if ev.bselDesc(nt2, u) {
			return true
		}
	}
	return false
}
