// Package selectivity implements the paper's recursive selectivity
// algorithm (Section 4, Algorithms 1 and 2): SEL(v,u) parses a tree
// pattern against the document synopsis and returns the (approximate)
// matching set of documents satisfying the pattern; P(p) normalizes its
// cardinality by the root matching set.
//
// The algorithm is representation-agnostic: all set operations go
// through the matchset.Value algebra, so Counters (max/product), Sets
// and Hashes all evaluate through the same code path, exactly as the
// paper prescribes.
package selectivity

import (
	"treesim/internal/matchset"
	"treesim/internal/pattern"
	"treesim/internal/synopsis"
)

// Estimator evaluates tree-pattern selectivities over a synopsis.
type Estimator struct {
	syn *synopsis.Synopsis
}

// New returns an estimator over the given synopsis. The synopsis may
// keep evolving; evaluations always reflect its current state.
func New(s *synopsis.Synopsis) *Estimator {
	return &Estimator{syn: s}
}

// Synopsis returns the underlying synopsis.
func (e *Estimator) Synopsis() *synopsis.Synopsis { return e.syn }

// Evaluate runs SEL over the synopsis root and the pattern root and
// returns the estimated matching set of documents satisfying p.
func (e *Estimator) Evaluate(p *pattern.Pattern) matchset.Value {
	ev := &evaluator{
		syn:   e.syn,
		empty: e.syn.EmptyValue(),
		memo:  make(map[selKey]matchset.Value),
		uids:  make(map[*pattern.Node]int),
	}
	ev.number(p.Root)
	return ev.sel(e.syn.Root(), p.Root)
}

// P estimates the selectivity of p: the probability that a document of
// the observed stream matches p (Algorithm 2). The result is clamped to
// [0, 1] — sampling noise in the numerator and denominator estimates can
// otherwise push the ratio slightly outside.
func (e *Estimator) P(p *pattern.Pattern) float64 {
	den := e.syn.RootCard()
	if den == 0 {
		return 0
	}
	v := e.Evaluate(p).Card() / den
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// PAnd estimates the conjunction probability P(p ∧ q) by evaluating the
// root-merged pattern (Section 4).
func (e *Estimator) PAnd(p, q *pattern.Pattern) float64 {
	return e.P(pattern.MergeRoots(p, q))
}

// EvaluateCard converts a matching-set value from Evaluate into the
// probability of Algorithm 2 (clamped to [0, 1]).
func (e *Estimator) EvaluateCard(v matchset.Value) float64 {
	den := e.syn.RootCard()
	if den == 0 {
		return 0
	}
	out := v.Card() / den
	if out < 0 {
		return 0
	}
	if out > 1 {
		return 1
	}
	return out
}

// Note on conjunctions: SEL over a root-merged pattern intersects the
// root-level constraint sets of both patterns, so
// SEL(p ∧ q) = SEL(p) ∩ SEL(q) holds exactly (for counters, the product
// algebra is likewise associative). Batch consumers exploit this: each
// pattern is evaluated once and pairwise conjunctions reduce to
// matching-set intersections — see core.SimilarityMatrix.

// POr estimates P(p ∨ q) by inclusion–exclusion, clamped to [0, 1].
func (e *Estimator) POr(p, q *pattern.Pattern) float64 {
	v := e.P(p) + e.P(q) - e.PAnd(p, q)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

type selKey struct {
	v int // synopsis node id
	u int // pattern node id
}

type evaluator struct {
	syn   *synopsis.Synopsis
	empty matchset.Value
	memo  map[selKey]matchset.Value
	uids  map[*pattern.Node]int
}

func (ev *evaluator) number(n *pattern.Node) {
	ev.uids[n] = len(ev.uids)
	for _, c := range n.Children {
		ev.number(c)
	}
}

// sel is Algorithm 1. SEL(v,u) is the set of documents for which pattern
// node u is matched at synopsis node v with all of u's subtree
// constraints satisfied below v. Memoization on (v,u) pairs bounds the
// work by O(|HS|·|p|) even with descendant operators.
func (ev *evaluator) sel(v *synopsis.Node, u *pattern.Node) matchset.Value {
	key := selKey{v.ID(), ev.uids[u]}
	if r, ok := ev.memo[key]; ok {
		return r
	}
	res := ev.selCompute(v, u)
	ev.memo[key] = res
	return res
}

func (ev *evaluator) selCompute(v *synopsis.Node, u *pattern.Node) matchset.Value {
	// Line 1: label compatibility (label(v) ⪯ label(u)).
	if !pattern.LabelLeq(v.Label().Tag, u.Label) {
		return ev.empty
	}
	// Line 3: a pattern leaf is matched by v itself — all documents
	// containing v's path qualify.
	if u.IsLeaf() {
		return ev.syn.Full(v)
	}
	if u.Label != pattern.Descendant {
		// Line 6: a synopsis dead end (no children, no folded
		// structure) cannot satisfy u's child constraints.
		if v.IsLeaf() && v.Label().IsPlain() {
			return ev.empty
		}
		// Line 9: ⋂ over pattern children of (⋃ over synopsis children),
		// extended with folded-label contributions: if u' embeds in a
		// nested label of v, every document in S(v) (approximately)
		// satisfies u' below v.
		var res matchset.Value
		for _, u2 := range u.Children {
			uni := ev.empty
			for _, v2 := range v.Children() {
				uni = uni.Union(ev.sel(v2, u2))
			}
			for _, nt := range v.Label().Nested {
				if ev.bsel(nt, u2) {
					uni = uni.Union(ev.syn.Full(v))
					break
				}
			}
			if res == nil {
				res = uni
			} else {
				res = res.Intersect(uni)
			}
			if res.IsZero() {
				return res
			}
		}
		return res
	}
	// Lines 11–14: descendant operator. S0 maps "//" to a path of length
	// zero (u's children matched at v itself); S≥1 pushes "//" down to
	// v's children and into folded labels.
	var s0 matchset.Value
	for _, u2 := range u.Children {
		x := ev.sel(v, u2)
		if s0 == nil {
			s0 = x
		} else {
			s0 = s0.Intersect(x)
		}
	}
	if s0 == nil {
		s0 = ev.empty
	}
	s1 := ev.empty
	for _, v2 := range v.Children() {
		s1 = s1.Union(ev.sel(v2, u))
	}
	for _, nt := range v.Label().Nested {
		if ev.bselDesc(nt, u) {
			s1 = s1.Union(ev.syn.Full(v))
			break
		}
	}
	return s0.Union(s1)
}

// bsel is the boolean analogue of sel over a folded label tree: it
// decides whether pattern node u can be matched at label-tree node nt.
// Folded structure carries no per-level matching sets (they were unioned
// into the folded node), so the answer is structural.
func (ev *evaluator) bsel(nt *synopsis.LabelTree, u *pattern.Node) bool {
	if u.Label == pattern.Descendant {
		return ev.bselDesc(nt, u)
	}
	if !pattern.LabelLeq(nt.Tag, u.Label) {
		return false
	}
	for _, u2 := range u.Children {
		// Each pattern child must be matched within some folded child of
		// nt; bselDesc's zero-length case already covers a "//" child
		// whose constraints bind directly at that folded child.
		ok := false
		for _, nt2 := range nt.Nested {
			if ev.bsel(nt2, u2) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// bselDesc decides whether a descendant operator u ("//") can map into
// the label tree rooted at nt: either its child constraints are matched
// at nt itself (zero length) or it descends into some nested child.
func (ev *evaluator) bselDesc(nt *synopsis.LabelTree, u *pattern.Node) bool {
	all := true
	for _, u2 := range u.Children {
		if !ev.bsel(nt, u2) {
			all = false
			break
		}
	}
	if all {
		return true
	}
	for _, nt2 := range nt.Nested {
		if ev.bselDesc(nt2, u) {
			return true
		}
	}
	return false
}
