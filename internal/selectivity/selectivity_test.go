package selectivity

import (
	"math"
	"math/rand"
	"testing"

	"treesim/internal/matchset"
	"treesim/internal/pattern"
	"treesim/internal/synopsis"
	"treesim/internal/xmltree"
)

// corpus6 reproduces the paper's Section 3.2 example regime: b and d
// are mutually exclusive, f and o always co-occur under c.
var corpus6 = []string{
	"a(b(e))",
	"a(b(f))",
	"a(b,c(f,o))",
	"a(d,c(f,o))",
	"a(d(e))",
	"a(d(q))",
}

func parseDocs(t *testing.T, specs []string) []*xmltree.Tree {
	t.Helper()
	out := make([]*xmltree.Tree, len(specs))
	for i, s := range specs {
		tr, err := xmltree.ParseCompact(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		out[i] = tr
	}
	return out
}

func build(t *testing.T, kind matchset.Kind, docs []*xmltree.Tree) *Estimator {
	t.Helper()
	opts := synopsis.Options{Kind: kind, Seed: 42, SetCapacity: 1 << 20, HashCapacity: 1 << 20}
	s := synopsis.New(opts)
	for _, d := range docs {
		s.Insert(d)
	}
	return New(s)
}

// exactSkeletonP returns the fraction of documents whose skeleton
// matches p — the semantics the synopsis observes.
func exactSkeletonP(docs []*xmltree.Tree, p *pattern.Pattern) float64 {
	n := 0
	for _, d := range docs {
		if pattern.MatchesSkeleton(d, p) {
			n++
		}
	}
	return float64(n) / float64(len(docs))
}

func TestSetsModeIsExact(t *testing.T) {
	docs := parseDocs(t, corpus6)
	est := build(t, matchset.KindSets, docs)
	queries := []string{
		"/a", "/x", "/a/b", "/a/c", "/a/d",
		"/a/b/e", "/a/c/f", "/a/c/o", "/a/d/q",
		"//f", "//e", "//q", "//c/f",
		"/a//f", "/*/c/o", "/a/*/f",
		"/a[b][d]",     // the mutually-exclusive branch example: 0
		"/a[c/f][c/o]", // co-occurring branches: 1/3
		"/.[//b][//d]", // root conjunction, disjoint: 0
		"/.[//f][//o]", // root conjunction, co-occurring: 1/3
		"//c[f][o]", "/a//b/e", "/.",
	}
	for _, q := range queries {
		p := pattern.MustParse(q)
		want := exactSkeletonP(docs, p)
		if got := est.P(p); math.Abs(got-want) > 1e-12 {
			t.Errorf("P(%s) = %v, want %v", q, got, want)
		}
	}
}

func TestHashesModeExactUnderCapacity(t *testing.T) {
	docs := parseDocs(t, corpus6)
	est := build(t, matchset.KindHashes, docs)
	for _, q := range []string{"/a/b", "/a[c/f][c/o]", "//e", "/a[b][d]"} {
		p := pattern.MustParse(q)
		want := exactSkeletonP(docs, p)
		if got := est.P(p); math.Abs(got-want) > 1e-12 {
			t.Errorf("P(%s) = %v, want %v", q, got, want)
		}
	}
}

func TestCountersIndependenceBaseline(t *testing.T) {
	// The paper's Section 3.2 numbers: counters estimate P(a[b][d]) as
	// 1/4 (correct: 0) and P(a[c/f][c/o]) as 1/9 (correct: 1/3).
	docs := parseDocs(t, corpus6)
	est := build(t, matchset.KindCounters, docs)
	if got := est.P(pattern.MustParse("/a[b][d]")); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("counters P(a[b][d]) = %v, want 0.25", got)
	}
	if got := est.P(pattern.MustParse("/a[c/f][c/o]")); math.Abs(got-1.0/9) > 1e-12 {
		t.Errorf("counters P(a[c/f][c/o]) = %v, want 1/9", got)
	}
	// Single paths remain exact with counters.
	if got := est.P(pattern.MustParse("/a/b")); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("counters P(/a/b) = %v, want 0.5", got)
	}
}

func TestEmptyAndImpossiblePatterns(t *testing.T) {
	docs := parseDocs(t, corpus6)
	est := build(t, matchset.KindSets, docs)
	if got := est.P(pattern.New()); got != 1 {
		t.Errorf("P(empty pattern) = %v, want 1", got)
	}
	if got := est.P(pattern.MustParse("//nosuchtag")); got != 0 {
		t.Errorf("P(//nosuchtag) = %v, want 0", got)
	}
	// Empty synopsis.
	s := synopsis.New(synopsis.Options{Kind: matchset.KindSets})
	if got := New(s).P(pattern.MustParse("/a")); got != 0 {
		t.Errorf("P over empty synopsis = %v, want 0", got)
	}
}

func TestDescendantZeroLength(t *testing.T) {
	docs := parseDocs(t, []string{"a(b(c))", "a(x(b(c)))", "a(b)"})
	est := build(t, matchset.KindSets, docs)
	// /a//b[c]: b at depth 1 (zero-length //) or deeper.
	if got := est.P(pattern.MustParse("/a//b[c]")); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("P(/a//b[c]) = %v, want 2/3", got)
	}
	// //a: the root itself is a descendant-or-self.
	if got := est.P(pattern.MustParse("//a")); got != 1 {
		t.Errorf("P(//a) = %v, want 1", got)
	}
	// //b: depth 1 and 2.
	if got := est.P(pattern.MustParse("//b")); got != 1 {
		t.Errorf("P(//b) = %v, want 1", got)
	}
}

func TestFoldedLabelEvaluation(t *testing.T) {
	docs := parseDocs(t, corpus6)
	opts := synopsis.Options{Kind: matchset.KindSets, Seed: 1, SetCapacity: 1 << 20}
	s := synopsis.New(opts)
	for _, d := range docs {
		s.Insert(d)
	}
	// Fold f and o into c: label c[f][o], store = {2,3}.
	var cNode *synopsis.Node
	for _, n := range s.Nodes() {
		if n.Label().Tag == "c" {
			cNode = n
		}
	}
	for _, tag := range []string{"f", "o"} {
		for _, n := range s.Nodes() {
			if n.Label().Tag == tag && len(n.Parents()) == 1 && n.Parents()[0] == cNode {
				if err := s.FoldLeaf(n); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	est := New(s)
	cases := map[string]float64{
		"/a/c/f":      2.0 / 6, // via nested label
		"/a/c/o":      2.0 / 6,
		"/a/c[f][o]":  2.0 / 6,
		"//o":         2.0 / 6, // descendant into folded structure
		"/a/c/f/deep": 0,       // cannot extend beyond the fold
		"/a/c/*":      2.0 / 6, // wildcard embeds in nested label
		"//c[f]":      2.0 / 6,
	}
	for q, want := range cases {
		if got := est.P(pattern.MustParse(q)); math.Abs(got-want) > 1e-12 {
			t.Errorf("P(%s) over folded synopsis = %v, want %v", q, got, want)
		}
	}
	// Note: //f over the folded synopsis must still find f via c's label.
	if got := est.P(pattern.MustParse("//f")); math.Abs(got-2.0/6) > 1e-9 {
		// Doc 1 ("a(b(f))") still has a real f node under b; docs 2,3
		// have f folded under c. Expect 3/6.
		t.Logf("//f = %v (real f under b plus folded f under c)", got)
	}
	if got := est.P(pattern.MustParse("//f")); math.Abs(got-3.0/6) > 1e-12 {
		t.Errorf("P(//f) = %v, want 1/2", got)
	}
}

func TestMergedSynopsisDAGEvaluation(t *testing.T) {
	// Lossless merge: identical matching sets.
	docs := parseDocs(t, []string{"r(x(k),y(k))", "r(x(k),y(k))", "r(x,y)"})
	opts := synopsis.Options{Kind: matchset.KindSets, Seed: 1, SetCapacity: 1 << 20}
	s := synopsis.New(opts)
	for _, d := range docs {
		s.Insert(d)
	}
	var ks []*synopsis.Node
	for _, n := range s.Nodes() {
		if n.Label().Tag == "k" {
			ks = append(ks, n)
		}
	}
	if len(ks) != 2 {
		t.Fatalf("expected 2 k nodes, got %d", len(ks))
	}
	if err := s.MergeNodes(ks[0], ks[1]); err != nil {
		t.Fatal(err)
	}
	est := New(s)
	cases := map[string]float64{
		"/r/x/k":     2.0 / 3,
		"/r/y/k":     2.0 / 3,
		"//k":        2.0 / 3,
		"/r[x/k][y]": 2.0 / 3,
		"/r[x][y]":   1,
	}
	for q, want := range cases {
		if got := est.P(pattern.MustParse(q)); math.Abs(got-want) > 1e-12 {
			t.Errorf("P(%s) over merged synopsis = %v, want %v", q, got, want)
		}
	}
}

func TestPAndPOr(t *testing.T) {
	docs := parseDocs(t, corpus6)
	est := build(t, matchset.KindSets, docs)
	p := pattern.MustParse("//f")
	q := pattern.MustParse("//o")
	// f in docs 1,2,3; o in docs 2,3.
	if got := est.PAnd(p, q); math.Abs(got-2.0/6) > 1e-12 {
		t.Errorf("PAnd = %v, want 1/3", got)
	}
	if got := est.POr(p, q); math.Abs(got-3.0/6) > 1e-12 {
		t.Errorf("POr = %v, want 1/2", got)
	}
	// Conjunction is bounded by each conjunct (exact sets).
	if est.PAnd(p, q) > math.Min(est.P(p), est.P(q))+1e-12 {
		t.Error("PAnd exceeds min of marginals")
	}
}

func TestEstimatorAgainstExactSemantics(t *testing.T) {
	// Property: with unbounded Sets, the estimator equals exact
	// skeleton-semantics evaluation for random corpora and patterns.
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 30; trial++ {
		var docs []*xmltree.Tree
		for i := 0; i < 25; i++ {
			docs = append(docs, randomDoc(rng))
		}
		est := build(t, matchset.KindSets, docs)
		for i := 0; i < 40; i++ {
			p := randomPattern(rng)
			want := exactSkeletonP(docs, p)
			got := est.P(p)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d: P(%s) = %v, want %v\ndocs: %v", trial, p, got, want, docStrings(docs))
			}
		}
	}
}

func docStrings(docs []*xmltree.Tree) []string {
	out := make([]string, len(docs))
	for i, d := range docs {
		out[i] = d.String()
	}
	return out
}

func randomDoc(rng *rand.Rand) *xmltree.Tree {
	labels := []string{"a", "b", "c", "d", "e"}
	var buildNode func(depth int) *xmltree.Node
	buildNode = func(depth int) *xmltree.Node {
		n := &xmltree.Node{Label: labels[rng.Intn(len(labels))]}
		if depth < 4 {
			for i := 0; i < rng.Intn(3); i++ {
				n.Children = append(n.Children, buildNode(depth+1))
			}
		}
		return n
	}
	return &xmltree.Tree{Root: buildNode(1)}
}

func randomPattern(rng *rand.Rand) *pattern.Pattern {
	labels := []string{"a", "b", "c", "d", "e"}
	var buildNode func(depth int, allowDesc bool) *pattern.Node
	buildNode = func(depth int, allowDesc bool) *pattern.Node {
		r := rng.Float64()
		var n *pattern.Node
		switch {
		case allowDesc && r < 0.2:
			n = &pattern.Node{Label: pattern.Descendant}
			n.Children = []*pattern.Node{buildNode(depth+1, false)}
			return n
		case r < 0.35:
			n = &pattern.Node{Label: pattern.Wildcard}
		default:
			n = &pattern.Node{Label: labels[rng.Intn(len(labels))]}
		}
		if depth < 3 {
			for i := 0; i < rng.Intn(3); i++ {
				n.Children = append(n.Children, buildNode(depth+1, true))
			}
		}
		return n
	}
	p := pattern.New()
	for i := 0; i < 1+rng.Intn(2); i++ {
		p.Root.Children = append(p.Root.Children, buildNode(1, true))
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

func TestHashesSetsAgreeWhenUnbounded(t *testing.T) {
	// Differential property: with capacities exceeding the corpus, the
	// Hashes and Sets estimators must agree exactly on every query (no
	// subsampling ever happens, so both are exact).
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 10; trial++ {
		var docs []*xmltree.Tree
		for i := 0; i < 30; i++ {
			docs = append(docs, randomDoc(rng))
		}
		hashes := build(t, matchset.KindHashes, docs)
		sets := build(t, matchset.KindSets, docs)
		for i := 0; i < 30; i++ {
			p := randomPattern(rng)
			a, b := hashes.P(p), sets.P(p)
			if a != b {
				t.Fatalf("trial %d: hashes %v != sets %v for %s", trial, a, b, p)
			}
		}
	}
}

func TestExactRootCardOption(t *testing.T) {
	// With ExactRootCard the denominator is the true stream length;
	// for an unbounded synopsis both choices coincide.
	docs := parseDocs(t, corpus6)
	for _, exact := range []bool{false, true} {
		s := synopsis.New(synopsis.Options{
			Kind: matchset.KindHashes, HashCapacity: 1 << 20, Seed: 1, ExactRootCard: exact,
		})
		for _, d := range docs {
			s.Insert(d)
		}
		est := New(s)
		if got := est.P(pattern.MustParse("/a/b")); math.Abs(got-0.5) > 1e-12 {
			t.Errorf("exact=%v: P = %v, want 0.5", exact, got)
		}
	}
}

func TestHashesEstimateAccuracyUnderSampling(t *testing.T) {
	// A larger corpus with per-node capacity far below the corpus size:
	// estimates should stay within a reasonable band of the truth.
	rng := rand.New(rand.NewSource(7))
	var docs []*xmltree.Tree
	for i := 0; i < 2000; i++ {
		docs = append(docs, randomDoc(rng))
	}
	opts := synopsis.Options{Kind: matchset.KindHashes, Seed: 3, HashCapacity: 128}
	s := synopsis.New(opts)
	for _, d := range docs {
		s.Insert(d)
	}
	est := New(s)
	queries := []string{"/a", "/a/b", "//c", "/a[b][c]", "/*/a", "//b/c"}
	for _, q := range queries {
		p := pattern.MustParse(q)
		want := exactSkeletonP(docs, p)
		got := est.P(p)
		if want > 0.05 {
			if rel := math.Abs(got-want) / want; rel > 0.35 {
				t.Errorf("P(%s) = %v, want ~%v (rel err %v)", q, got, want, rel)
			}
		} else if got > want+0.1 {
			t.Errorf("P(%s) = %v, want ~%v", q, got, want)
		}
	}
}
