package synopsis

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"treesim/internal/matchset"
	"treesim/internal/sampling"
)

// Serialization of the synopsis: a versioned gob encoding of the DAG
// structure, labels, matching-set dumps, and stream position. Loading
// reconstructs a synopsis whose queries are identical to the saved
// one's; the random source used for future stream sampling (Sets mode)
// is freshly seeded, so continued streaming is statistically — not
// bitwise — equivalent.

// encodeVersion is bumped on incompatible format changes.
const encodeVersion = 1

type encLabel struct {
	Tag    string
	Nested []encLabel
}

type encNode struct {
	ID       int
	Label    encLabel
	Children []int
	Store    matchset.Dump
}

type encSynopsis struct {
	FormatVersion int
	Kind          int
	HashCapacity  int
	SetCapacity   int
	Seed          int64
	ExactRootCard bool
	NoReservoir   bool
	Docs          int
	LiveDocs      int
	NextDocID     uint64
	RootID        int
	Nodes         []encNode
	ReservoirIDs  []uint64 // Sets mode: current document sample
}

func encodeLabel(l *LabelTree) encLabel {
	out := encLabel{Tag: l.Tag}
	for _, c := range l.Nested {
		out.Nested = append(out.Nested, encodeLabel(c))
	}
	return out
}

func decodeLabel(e encLabel) *LabelTree {
	out := &LabelTree{Tag: e.Tag}
	for _, c := range e.Nested {
		out.Nested = append(out.Nested, decodeLabel(c))
	}
	return out
}

// Encode writes the synopsis to w.
func (s *Synopsis) Encode(w io.Writer) error {
	enc := encSynopsis{
		FormatVersion: encodeVersion,
		Kind:          int(s.opts.Kind),
		HashCapacity:  s.opts.HashCapacity,
		SetCapacity:   s.opts.SetCapacity,
		Seed:          s.opts.Seed,
		ExactRootCard: s.opts.ExactRootCard,
		NoReservoir:   s.opts.NoReservoir,
		Docs:          s.docs,
		LiveDocs:      s.liveDocs,
		NextDocID:     s.nextDocID,
		RootID:        s.root.id,
	}
	for _, n := range s.Nodes() {
		en := encNode{ID: n.id, Label: encodeLabel(n.label), Store: n.store.Dump()}
		for _, c := range n.children {
			en.Children = append(en.Children, c.id)
		}
		// Deterministic output for identical synopses: child ids come
		// from insertion-ordered slices and must be ordered here; dumped
		// identifiers are already sorted by Store.Dump.
		sort.Ints(en.Children)
		enc.Nodes = append(enc.Nodes, en)
	}
	if s.reservoir != nil {
		enc.ReservoirIDs = append(enc.ReservoirIDs, s.reservoir.IDs()...)
		sort.Slice(enc.ReservoirIDs, func(i, j int) bool { return enc.ReservoirIDs[i] < enc.ReservoirIDs[j] })
	}
	if err := gob.NewEncoder(w).Encode(enc); err != nil {
		return fmt.Errorf("synopsis: encode: %w", err)
	}
	return nil
}

// Decode reads a synopsis previously written by Encode.
func Decode(r io.Reader) (*Synopsis, error) {
	var enc encSynopsis
	if err := gob.NewDecoder(r).Decode(&enc); err != nil {
		return nil, fmt.Errorf("synopsis: decode: %w", err)
	}
	if enc.FormatVersion != encodeVersion {
		return nil, fmt.Errorf("synopsis: decode: unsupported format version %d (want %d)", enc.FormatVersion, encodeVersion)
	}
	s := New(Options{
		Kind:          matchset.Kind(enc.Kind),
		HashCapacity:  enc.HashCapacity,
		SetCapacity:   enc.SetCapacity,
		Seed:          enc.Seed,
		ExactRootCard: enc.ExactRootCard,
		NoReservoir:   enc.NoReservoir,
	})
	s.docs = enc.Docs
	s.liveDocs = enc.LiveDocs
	s.nextDocID = enc.NextDocID

	nodes := make(map[int]*Node, len(enc.Nodes))
	maxID := 0
	for i, en := range enc.Nodes {
		n := &Node{id: en.ID, slot: i, label: decodeLabel(en.Label), store: s.factory.Restore(en.Store)}
		nodes[en.ID] = n
		if en.ID > maxID {
			maxID = en.ID
		}
	}
	s.slotBound = len(enc.Nodes)
	s.freeSlots = nil
	root, ok := nodes[enc.RootID]
	if !ok {
		return nil, fmt.Errorf("synopsis: decode: missing root node %d", enc.RootID)
	}
	if root.label.Tag != rootTag {
		return nil, fmt.Errorf("synopsis: decode: root labeled %q, want %q", root.label.Tag, rootTag)
	}
	for _, en := range enc.Nodes {
		n := nodes[en.ID]
		for _, cid := range en.Children {
			c, ok := nodes[cid]
			if !ok {
				return nil, fmt.Errorf("synopsis: decode: node %d references missing child %d", en.ID, cid)
			}
			n.children = append(n.children, c)
			c.parents = append(c.parents, n)
		}
	}
	s.root = root
	s.nextID = maxID + 1
	if s.reservoir != nil {
		// Re-seed with a position-dependent seed so the continuation
		// does not replay the original acceptance sequence.
		s.reservoir = sampling.RestoreReservoir(
			enc.Seed+int64(enc.Docs), s.opts.SetCapacity, enc.ReservoirIDs, enc.Docs)
	}
	s.version++
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("synopsis: decode: %w", err)
	}
	return s, nil
}
