package synopsis

import (
	"bytes"
	"strings"
	"testing"

	"treesim/internal/matchset"
	"treesim/internal/xmltree"
)

func roundTrip(t *testing.T, s *Synopsis) *Synopsis {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, kind := range []matchset.Kind{matchset.KindCounters, matchset.KindSets, matchset.KindHashes} {
		t.Run(kind.String(), func(t *testing.T) {
			s := New(Options{Kind: kind, SetCapacity: 100, HashCapacity: 100, Seed: 9})
			buildCorpus(t, s, corpus6)
			out := roundTrip(t, s)
			if out.DocsObserved() != s.DocsObserved() {
				t.Errorf("docs: %d vs %d", out.DocsObserved(), s.DocsObserved())
			}
			if out.Stats() != s.Stats() {
				t.Errorf("stats: %+v vs %+v", out.Stats(), s.Stats())
			}
			if err := out.Validate(); err != nil {
				t.Fatal(err)
			}
			// Full matching-set cardinalities coincide node by node.
			a, b := s.Nodes(), out.Nodes()
			if len(a) != len(b) {
				t.Fatalf("node counts differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i].ID() != b[i].ID() || !a[i].Label().Equal(b[i].Label()) {
					t.Fatalf("node %d differs: %s vs %s", i, a[i].Label(), b[i].Label())
				}
				if ca, cb := s.Full(a[i]).Card(), out.Full(b[i]).Card(); ca != cb {
					t.Errorf("node %d full card: %v vs %v", a[i].ID(), ca, cb)
				}
			}
			if s.RootCard() != out.RootCard() {
				t.Errorf("root card: %v vs %v", s.RootCard(), out.RootCard())
			}
		})
	}
}

func TestEncodeDecodePrunedDAG(t *testing.T) {
	s := New(Options{Kind: matchset.KindHashes, HashCapacity: 100, Seed: 3})
	buildCorpus(t, s, corpus6)
	// Create folded labels and a merged (multi-parent) node.
	f := findPath(t, s, "a", "c", "f")
	if err := s.FoldLeaf(f); err != nil {
		t.Fatal(err)
	}
	eb := findPath(t, s, "a", "b", "e")
	ed := findPath(t, s, "a", "d", "e")
	if err := s.MergeNodes(eb, ed); err != nil {
		t.Fatal(err)
	}
	out := roundTrip(t, s)
	if out.Stats() != s.Stats() {
		t.Errorf("stats after prune: %+v vs %+v", out.Stats(), s.Stats())
	}
	// The folded label must survive.
	c := findPath(t, out, "a", "c")
	if c.Label().String() != "c[f]" {
		t.Errorf("folded label = %q", c.Label())
	}
	// The merged node must still be shared.
	if findPath(t, out, "a", "b", "e") != findPath(t, out, "a", "d", "e") {
		t.Error("merged node not shared after round trip")
	}
}

func TestDecodeContinuesStreaming(t *testing.T) {
	s := New(Options{Kind: matchset.KindSets, SetCapacity: 4, Seed: 7})
	buildCorpus(t, s, corpus6)
	out := roundTrip(t, s)
	// Continue the stream on the restored synopsis: document ids must
	// not collide and the reservoir must keep functioning.
	for i := 0; i < 50; i++ {
		tr, _ := xmltree.ParseCompact("a(b)")
		id := out.Insert(tr)
		if id < 6 {
			t.Fatalf("document id %d collides with the saved stream", id)
		}
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.DocsObserved() != 56 {
		t.Errorf("docs = %d, want 56", out.DocsObserved())
	}
	if got := out.RootCard(); got != 4 {
		t.Errorf("root card = %v, want reservoir capacity 4", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage input should fail")
	}
	if _, err := Decode(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	mk := func() *bytes.Buffer {
		s := New(Options{Kind: matchset.KindHashes, HashCapacity: 50, Seed: 5})
		buildCorpus(t, s, corpus6)
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	if !bytes.Equal(mk().Bytes(), mk().Bytes()) {
		t.Error("identical synopses encode differently")
	}
}
