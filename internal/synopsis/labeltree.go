package synopsis

import (
	"sort"
	"strings"
)

// LabelTree is the (possibly nested) label of a synopsis node. A plain
// node has a bare tag and no nesting. Folding a leaf child c into its
// parent p (paper, Section 3.3) turns p's label into p[c]; repeated
// folding produces labels nested at several levels, each representing a
// subtree whose paths co-occur in (approximately) the same documents.
type LabelTree struct {
	// Tag is the element tag at this level of the label.
	Tag string
	// Nested holds the folded former children, if any.
	Nested []*LabelTree
}

// NewLabel returns a plain (unnested) label.
func NewLabel(tag string) *LabelTree { return &LabelTree{Tag: tag} }

// IsPlain reports whether the label has no folded structure.
func (l *LabelTree) IsPlain() bool { return len(l.Nested) == 0 }

// Size returns the number of label-tree nodes, which is the label's
// contribution to the paper's synopsis size measure.
func (l *LabelTree) Size() int {
	if l == nil {
		return 0
	}
	s := 1
	for _, c := range l.Nested {
		s += c.Size()
	}
	return s
}

// Clone returns a deep copy.
func (l *LabelTree) Clone() *LabelTree {
	if l == nil {
		return nil
	}
	out := &LabelTree{Tag: l.Tag}
	if len(l.Nested) > 0 {
		out.Nested = make([]*LabelTree, len(l.Nested))
		for i, c := range l.Nested {
			out.Nested[i] = c.Clone()
		}
	}
	return out
}

// String renders the label in the paper's notation, e.g. "c[f][o[n]]".
func (l *LabelTree) String() string {
	var b strings.Builder
	l.write(&b)
	return b.String()
}

func (l *LabelTree) write(b *strings.Builder) {
	b.WriteString(l.Tag)
	for _, c := range l.Nested {
		b.WriteByte('[')
		c.write(b)
		b.WriteByte(']')
	}
}

// canonicalKey returns a canonical string for equality comparisons that
// is insensitive to the order of folded children.
func (l *LabelTree) canonicalKey() string {
	if l.IsPlain() {
		return l.Tag
	}
	keys := make([]string, len(l.Nested))
	for i, c := range l.Nested {
		keys[i] = c.canonicalKey()
	}
	sort.Strings(keys)
	return l.Tag + "[" + strings.Join(keys, "][") + "]"
}

// Equal reports whether two labels are identical up to the order of
// folded children.
func (l *LabelTree) Equal(o *LabelTree) bool {
	if l == nil || o == nil {
		return l == o
	}
	return l.canonicalKey() == o.canonicalKey()
}
