package synopsis

import (
	"fmt"
	"sort"

	"treesim/internal/matchset"
)

// jaccard estimates |A∩B| / |A∪B| from two matching-set values.
func jaccard(a, b matchset.Value) float64 {
	u := a.Union(b).Card()
	if u == 0 {
		return 0
	}
	return a.Intersect(b).Card() / u
}

// FoldLeaf folds a leaf node into all of its parents (paper, Section
// 3.3): each parent's label gains the leaf's label tree as a nested
// child, each parent's stored sample becomes the union of its own and
// the leaf's, and the leaf disappears. Folding requires a sample-based
// representation (Sets or Hashes).
func (s *Synopsis) FoldLeaf(leaf *Node) error {
	if s.opts.Kind == matchset.KindCounters {
		return fmt.Errorf("synopsis: folding requires sample-based matching sets")
	}
	if leaf == s.root {
		return fmt.Errorf("synopsis: cannot fold the root")
	}
	if !leaf.IsLeaf() {
		return fmt.Errorf("synopsis: node %d is not a leaf", leaf.id)
	}
	if leaf.dead {
		return fmt.Errorf("synopsis: node %d is dead", leaf.id)
	}
	for _, p := range leaf.parents {
		if p == s.root {
			return fmt.Errorf("synopsis: refusing to fold into the root")
		}
	}
	leafFull := s.Full(leaf)
	for _, p := range leaf.parents {
		p.label = p.label.Clone()
		p.label.Nested = append(p.label.Nested, leaf.label.Clone())
		p.store.SetTo(p.store.Value().Union(leafFull))
	}
	s.detach(leaf)
	return nil
}

// DeleteLeaf removes a low-influence leaf node (paper, Section 3.3).
func (s *Synopsis) DeleteLeaf(leaf *Node) error {
	if leaf == s.root {
		return fmt.Errorf("synopsis: cannot delete the root")
	}
	if !leaf.IsLeaf() {
		return fmt.Errorf("synopsis: node %d is not a leaf", leaf.id)
	}
	if leaf.dead {
		return fmt.Errorf("synopsis: node %d is dead", leaf.id)
	}
	s.detach(leaf)
	return nil
}

// MergeNodes merges two same-label nodes a and b into a (paper, Section
// 3.3). Both must be leaves, or must share exactly the same children
// ("their children have already been merged"). The merged node's stored
// sample is the intersection of the two full matching sets; b's parents
// are re-pointed at a, which in general turns the synopsis into a DAG.
func (s *Synopsis) MergeNodes(a, b *Node) error {
	if s.opts.Kind == matchset.KindCounters {
		return fmt.Errorf("synopsis: merging requires sample-based matching sets")
	}
	if a == b {
		return fmt.Errorf("synopsis: cannot merge a node with itself")
	}
	if a == s.root || b == s.root {
		return fmt.Errorf("synopsis: cannot merge the root")
	}
	if a.dead || b.dead {
		return fmt.Errorf("synopsis: merge of dead node")
	}
	if !a.label.Equal(b.label) {
		return fmt.Errorf("synopsis: labels %s and %s differ", a.label, b.label)
	}
	if !(a.IsLeaf() && b.IsLeaf()) && !sameChildren(a, b) {
		return fmt.Errorf("synopsis: nodes %d and %d are mergeable only as leaves or with identical children", a.id, b.id)
	}
	inter := s.Full(a).Intersect(s.Full(b))
	a.store.SetTo(inter)
	// Re-point b's parents at a.
	for _, p := range b.parents {
		p.children = removeNode(p.children, b)
		if !containsNode(p.children, a) {
			p.children = append(p.children, a)
		}
		if !containsNode(a.parents, p) {
			a.parents = append(a.parents, p)
		}
	}
	// Unlink b from its children (a already shares them).
	for _, c := range b.children {
		c.parents = removeNode(c.parents, b)
	}
	b.parents, b.children = nil, nil
	b.dead = true
	s.releaseSlot(b)
	s.version++
	return nil
}

func sameChildren(a, b *Node) bool {
	if len(a.children) != len(b.children) {
		return false
	}
	for _, c := range a.children {
		if !containsNode(b.children, c) {
			return false
		}
	}
	return true
}

// FoldCandidate is a leaf that could be folded into its parent(s), with
// its matching-set similarity score (averaged over parents when a merged
// leaf has several).
type FoldCandidate struct {
	Leaf  *Node
	Score float64
}

// FoldCandidates returns foldable leaves sorted by decreasing score
// (ties by id for determinism). Leaves whose only parents include the
// root are excluded.
func (s *Synopsis) FoldCandidates() []FoldCandidate {
	var out []FoldCandidate
	for _, n := range s.Nodes() {
		if n == s.root || !n.IsLeaf() || len(n.parents) == 0 {
			continue
		}
		rootParent := false
		for _, p := range n.parents {
			if p == s.root {
				rootParent = true
				break
			}
		}
		if rootParent {
			continue
		}
		full := s.Full(n)
		sum := 0.0
		for _, p := range n.parents {
			sum += jaccard(full, s.Full(p))
		}
		out = append(out, FoldCandidate{Leaf: n, Score: sum / float64(len(n.parents))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Leaf.id < out[j].Leaf.id
	})
	return out
}

// MergeCandidate is a mergeable same-label node pair with its estimated
// matching-set similarity.
type MergeCandidate struct {
	A, B  *Node
	Score float64
}

// MergeCandidates returns mergeable pairs sorted by decreasing score.
func (s *Synopsis) MergeCandidates() []MergeCandidate {
	groups := make(map[string][]*Node)
	var keys []string
	for _, n := range s.Nodes() {
		if n == s.root {
			continue
		}
		k := n.label.canonicalKey()
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], n)
	}
	sort.Strings(keys)
	var out []MergeCandidate
	for _, k := range keys {
		g := groups[k]
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				a, b := g[i], g[j]
				if !(a.IsLeaf() && b.IsLeaf()) && !sameChildren(a, b) {
					continue
				}
				out = append(out, MergeCandidate{A: a, B: b, Score: jaccard(s.Full(a), s.Full(b))})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].A.id != out[j].A.id {
			return out[i].A.id < out[j].A.id
		}
		return out[i].B.id < out[j].B.id
	})
	return out
}

// DeleteCandidates returns deletable leaves sorted by increasing full
// cardinality (the least influential first).
func (s *Synopsis) DeleteCandidates() []*Node {
	var leaves []*Node
	for _, n := range s.Nodes() {
		if n != s.root && n.IsLeaf() {
			leaves = append(leaves, n)
		}
	}
	sort.Slice(leaves, func(i, j int) bool {
		ci, cj := s.Full(leaves[i]).Card(), s.Full(leaves[j]).Card()
		if ci != cj {
			return ci < cj
		}
		return leaves[i].id < leaves[j].id
	})
	return leaves
}

// CompressOptions tunes the compression driver.
type CompressOptions struct {
	// TargetRatio α: compress until Size() ≤ α · (size at call time).
	TargetRatio float64
	// FoldThreshold is the minimum similarity for lossy folds in the
	// second stage (default 0.5). Lossless folds (score ≈ 1) are always
	// applied first.
	FoldThreshold float64
	// MergeThreshold is the minimum similarity for merges in the final
	// stage (default 0; the paper merges in decreasing similarity order
	// without a cutoff).
	MergeThreshold float64
	// DeleteCardFraction restricts stage-2 deletions to leaves whose
	// full matching-set cardinality is at most this fraction of the
	// root's ("low-cardinality nodes", paper Section 3.3). Default 0.1.
	// When a full round cannot reach the target, the driver escalates:
	// thresholds relax until pruning can always proceed.
	DeleteCardFraction float64
}

func (o CompressOptions) withDefaults() CompressOptions {
	if o.FoldThreshold == 0 {
		o.FoldThreshold = 0.5
	}
	if o.DeleteCardFraction == 0 {
		o.DeleteCardFraction = 0.1
	}
	return o
}

// losslessScore is the similarity at or above which a fold is considered
// lossless (identical matching sets up to estimation noise).
const losslessScore = 0.999999

// Compress prunes the synopsis down to TargetRatio of its current size,
// applying the paper's operation order (Section 5.2): first lossless
// folds of leaves with identical matching sets, then folding and
// deleting low-cardinality nodes, finally merging same-label nodes. It
// returns the achieved ratio.
//
// In Counters mode only leaf deletion is available (the paper's primary
// means of controlling counter-synopsis size).
//
// To stay near-linear, Compress tracks the size incrementally: each
// operation adjusts the running total by the local contribution change
// of the affected nodes, and the exact size is resynchronized at round
// boundaries.
func (s *Synopsis) Compress(opts CompressOptions) float64 {
	opts = opts.withDefaults()
	if opts.TargetRatio <= 0 || opts.TargetRatio > 1 {
		panic(fmt.Sprintf("synopsis: target ratio %v out of (0,1]", opts.TargetRatio))
	}
	base := s.Size()
	target := int(float64(base) * opts.TargetRatio)
	samples := s.opts.Kind != matchset.KindCounters
	cur := base

	// apply performs op and updates cur by the change in the affected
	// nodes' size contributions.
	apply := func(affected []*Node, op func() error) bool {
		before := contribution(affected)
		if op() != nil {
			return false
		}
		cur += contribution(affected) - before
		return true
	}

	// Stage 1: lossless folds, exhaustively (they are free accuracy-wise
	// and may enable deeper folds).
	if samples {
		for {
			applied := false
			for _, c := range s.FoldCandidates() {
				if c.Score < losslessScore {
					break
				}
				leaf := c.Leaf
				if leaf.dead || !leaf.IsLeaf() {
					continue
				}
				if apply(append([]*Node{leaf}, leaf.parents...), func() error { return s.FoldLeaf(leaf) }) {
					applied = true
				}
			}
			if !applied {
				break
			}
		}
		cur = s.Size()
	}

	foldTh := opts.FoldThreshold
	deleteFrac := opts.DeleteCardFraction
	for cur > target {
		progressed := false

		// Stage 2: fold high-similarity leaves, then delete
		// low-cardinality leaves. Candidate scores are computed once per
		// round; applying them in a batch with slightly stale scores
		// only affects prioritization, not correctness.
		if samples {
			for _, c := range s.FoldCandidates() {
				if cur <= target || c.Score < foldTh {
					break
				}
				leaf := c.Leaf
				if leaf.dead || !leaf.IsLeaf() {
					continue
				}
				if apply(append([]*Node{leaf}, leaf.parents...), func() error { return s.FoldLeaf(leaf) }) {
					progressed = true
				}
			}
		}
		if cur > target {
			maxCard := deleteFrac * s.RootCard()
			for _, leaf := range s.DeleteCandidates() {
				if cur <= target {
					break
				}
				l := leaf
				if l.dead || !l.IsLeaf() {
					continue
				}
				if s.Full(l).Card() > maxCard {
					break // candidates are sorted by ascending cardinality
				}
				if apply(append([]*Node{l}, l.parents...), func() error { return s.DeleteLeaf(l) }) {
					progressed = true
				}
			}
		}

		// Stage 3: merge same-label nodes in decreasing similarity.
		if samples && cur > target {
			for _, c := range s.MergeCandidates() {
				if cur <= target || c.Score < opts.MergeThreshold {
					break
				}
				a, b := c.A, c.B
				if a.dead || b.dead {
					continue
				}
				affected := []*Node{a, b}
				affected = append(affected, b.parents...)
				if apply(affected, func() error { return s.MergeNodes(a, b) }) {
					progressed = true
				}
			}
		}

		cur = s.Size() // resync before deciding on another round
		if cur <= target {
			break
		}
		if !progressed {
			// Escalate: relax the deletion bound first (dropping rare
			// paths is the paper's primary size control), then fold
			// aggressiveness — but never below 0.3, where folding
			// attributes the parent's whole set to clearly dissimilar
			// children and does more harm than deletion.
			switch {
			case deleteFrac < 1:
				deleteFrac *= 4
				if deleteFrac > 1 {
					deleteFrac = 1
				}
			case foldTh > 0.3:
				foldTh -= 0.1
				if foldTh < 0.3 {
					foldTh = 0.3
				}
			default:
				return float64(s.Size()) / float64(base)
			}
		}
	}
	return float64(s.Size()) / float64(base)
}

// contribution sums the size contributions (node + outgoing edges +
// label-tree nodes + store entries) of the given nodes, deduplicated;
// dead nodes contribute nothing.
func contribution(nodes []*Node) int {
	seen := make(map[int]bool, len(nodes))
	total := 0
	for _, n := range nodes {
		if n == nil || n.dead || seen[n.id] {
			continue
		}
		seen[n.id] = true
		total += 1 + len(n.children) + n.label.Size() + n.store.Entries()
	}
	return total
}
