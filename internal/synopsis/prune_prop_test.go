package synopsis

import (
	"math/rand"
	"testing"

	"treesim/internal/matchset"
	"treesim/internal/xmltree"
)

// TestRandomOpSequencesKeepInvariants drives random valid pruning
// operations against random synopses and checks the structural
// invariants (Validate), size monotonicity, and that the DAG stays
// queryable.
func TestRandomOpSequencesKeepInvariants(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := New(Options{Kind: matchset.KindHashes, HashCapacity: 40, Seed: seed})
		// Random corpus over a small alphabet → rich same-label
		// structure for merges.
		labels := []string{"a", "b", "c", "d"}
		var gen func(depth int) *xmltree.Node
		gen = func(depth int) *xmltree.Node {
			n := &xmltree.Node{Label: labels[rng.Intn(len(labels))]}
			if depth < 4 {
				for i := 0; i < rng.Intn(3); i++ {
					n.Children = append(n.Children, gen(depth+1))
				}
			}
			return n
		}
		for i := 0; i < 40; i++ {
			s.Insert(&xmltree.Tree{Root: gen(1)})
		}
		size := s.Size()
		for op := 0; op < 30; op++ {
			switch rng.Intn(3) {
			case 0:
				cands := s.FoldCandidates()
				if len(cands) > 0 {
					c := cands[rng.Intn(len(cands))]
					if err := s.FoldLeaf(c.Leaf); err != nil {
						t.Fatalf("seed %d op %d: fold: %v", seed, op, err)
					}
				}
			case 1:
				cands := s.MergeCandidates()
				if len(cands) > 0 {
					c := cands[rng.Intn(len(cands))]
					if err := s.MergeNodes(c.A, c.B); err != nil {
						t.Fatalf("seed %d op %d: merge: %v", seed, op, err)
					}
				}
			default:
				cands := s.DeleteCandidates()
				if len(cands) > 0 {
					if err := s.DeleteLeaf(cands[rng.Intn(len(cands))]); err != nil {
						t.Fatalf("seed %d op %d: delete: %v", seed, op, err)
					}
				}
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
			if ns := s.Size(); ns > size {
				t.Fatalf("seed %d op %d: size grew %d -> %d", seed, op, size, ns)
			} else {
				size = ns
			}
			// Full sets on every node must stay computable and bounded
			// by the root's.
			rootCard := s.Full(s.Root()).Card()
			for _, n := range s.Nodes() {
				if c := s.Full(n).Card(); c > rootCard+1e-9 {
					t.Fatalf("seed %d op %d: node %d card %v exceeds root %v",
						seed, op, n.ID(), c, rootCard)
				}
			}
		}
		// Streaming into a heavily pruned synopsis must still work.
		for i := 0; i < 10; i++ {
			s.Insert(&xmltree.Tree{Root: gen(1)})
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: post-prune insert: %v", seed, err)
		}
	}
}

// TestCompressExtremeTargets pushes compression to its limits.
func TestCompressExtremeTargets(t *testing.T) {
	s := New(Options{Kind: matchset.KindHashes, HashCapacity: 50, Seed: 1})
	buildCorpus(t, s, corpus6)
	for i := 0; i < 10; i++ {
		buildCorpus(t, s, corpus6)
	}
	ratio := s.Compress(CompressOptions{TargetRatio: 0.01})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The root always survives; ratio cannot reach 0 but must be small.
	if ratio > 0.5 {
		t.Errorf("extreme compression achieved only %v", ratio)
	}
	if s.Root() == nil || s.Root().Label().Tag != "/." {
		t.Error("root lost")
	}
}
