// Package synopsis implements the paper's XML document synopsis HS
// (Section 3): a concise, incrementally maintained summary of the path
// distribution of an XML document stream. The synopsis starts as a tree
// whose nodes correspond to distinct root-to-node label paths of the
// observed document skeletons, each carrying a matching set S(t) of the
// documents containing that path; pruning operations (merging, folding,
// deletion — Section 3.3) compress it, in general into a DAG with nested
// labels.
package synopsis

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"treesim/internal/matchset"
	"treesim/internal/sampling"
	"treesim/internal/xmltree"
)

// Options configures a synopsis.
type Options struct {
	// Kind selects the matching-set representation (Counters, Sets,
	// Hashes).
	Kind matchset.Kind
	// HashCapacity is the per-node distinct-sample capacity h (Hashes
	// only). The paper sweeps 50 ≤ h ≤ 10000.
	HashCapacity int
	// SetCapacity is the document-level reservoir size k (Sets only).
	SetCapacity int
	// Seed drives the hash function and the reservoir; fixed seed means
	// fully deterministic behaviour.
	Seed int64
	// ExactRootCard makes P(p) use the exact number of observed
	// documents as denominator instead of the estimated |S(rs)| of
	// Algorithm 2. The paper uses the estimate; the exact count is
	// provided for ablations.
	ExactRootCard bool
	// NoReservoir disables document-level sampling in Sets mode: every
	// document is stored and the caller controls eviction explicitly
	// via RemoveDocument. This powers sliding-window estimation, an
	// extension beyond the paper.
	NoReservoir bool
}

func (o Options) withDefaults() Options {
	if o.Kind == matchset.KindHashes && o.HashCapacity == 0 {
		o.HashCapacity = 1000
	}
	if o.Kind == matchset.KindSets && o.SetCapacity == 0 {
		o.SetCapacity = 1000
	}
	return o
}

// Node is a synopsis node. After pruning the structure is a DAG: a node
// may have several parents (merge) and a nested label (fold).
type Node struct {
	id       int
	slot     int
	label    *LabelTree
	children []*Node
	parents  []*Node
	store    matchset.Store
	dead     bool
}

// ID returns a stable identifier, unique within the synopsis for its
// whole lifetime (never reused).
func (n *Node) ID() int { return n.id }

// Slot returns a dense identifier, unique among live nodes and recycled
// when nodes die, so Slot() < SlotBound() always holds and SlotBound
// tracks the peak number of live nodes rather than the total ever
// created. The selectivity estimator indexes its flat memo table by
// slot.
func (n *Node) Slot() int { return n.slot }

// Label returns the node's (possibly nested) label.
func (n *Node) Label() *LabelTree { return n.label }

// Children returns the node's children. Callers must not modify the
// returned slice.
func (n *Node) Children() []*Node { return n.children }

// Parents returns the node's parents. Callers must not modify the
// returned slice.
func (n *Node) Parents() []*Node { return n.parents }

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.children) == 0 }

// Synopsis is the document synopsis HS.
//
// Concurrency: methods that mutate the synopsis (Insert, RemoveDocument,
// Compress, the pruning operations) require exclusive access, but any
// number of read-only queries (Full, RootCard, Stats, selectivity
// evaluation) may run concurrently with each other — the query-time
// materialization caches synchronize internally. core.Estimator maps
// this contract onto a sync.RWMutex.
type Synopsis struct {
	opts      Options
	factory   *matchset.Factory
	hasher    *sampling.Hasher
	reservoir *sampling.Reservoir // Sets mode only
	root      *Node
	nextID    int
	slotBound int   // one past the highest slot ever in use
	freeSlots []int // slots of dead nodes, available for reuse
	docs      int   // total documents observed (|H|)
	liveDocs  int   // documents currently represented (NoReservoir mode)
	nextDocID uint64

	version int64
	cache   atomic.Pointer[fullCache]
}

// fullCache memoizes Full(v) per node for one synopsis version. A new
// cache replaces it after every mutation; concurrent readers of the same
// version share one cache and synchronize on its mutex (lookups take the
// read lock; a missing entry is computed outside the lock — duplicated
// work between racing readers is harmless because values are immutable).
type fullCache struct {
	version int64
	mu      sync.RWMutex
	vals    map[int]matchset.Value
}

func (c *fullCache) get(id int) (matchset.Value, bool) {
	c.mu.RLock()
	v, ok := c.vals[id]
	c.mu.RUnlock()
	return v, ok
}

func (c *fullCache) put(id int, v matchset.Value) {
	c.mu.Lock()
	c.vals[id] = v
	c.mu.Unlock()
}

// New returns an empty synopsis.
func New(opts Options) *Synopsis {
	opts = opts.withDefaults()
	s := &Synopsis{opts: opts}
	s.hasher = sampling.NewHasher(uint64(opts.Seed))
	switch opts.Kind {
	case matchset.KindCounters:
		s.factory = matchset.NewFactory(matchset.KindCounters, 0, nil, func() float64 { return float64(s.docs) })
	case matchset.KindSets:
		s.factory = matchset.NewFactory(matchset.KindSets, 0, nil, nil)
		if !opts.NoReservoir {
			s.reservoir = sampling.NewReservoir(opts.Seed, opts.SetCapacity)
		}
	case matchset.KindHashes:
		s.factory = matchset.NewFactory(matchset.KindHashes, opts.HashCapacity, s.hasher, nil)
	default:
		panic(fmt.Sprintf("synopsis: unknown matchset kind %d", int(opts.Kind)))
	}
	s.root = s.newNode(NewLabel(rootTag))
	return s
}

// rootTag is the special root label "/." of the synopsis (and of tree
// patterns).
const rootTag = "/."

// Options returns the synopsis configuration.
func (s *Synopsis) Options() Options { return s.opts }

// Kind returns the matching-set representation in use.
func (s *Synopsis) Kind() matchset.Kind { return s.opts.Kind }

// Root returns the synopsis root node (label "/.").
func (s *Synopsis) Root() *Node { return s.root }

// DocsObserved returns the number of documents inserted so far (|H|).
func (s *Synopsis) DocsObserved() int { return s.docs }

// EmptyValue returns the empty matching-set value of the synopsis's
// representation; the selectivity estimator uses it as ∅.
func (s *Synopsis) EmptyValue() matchset.Value { return s.factory.EmptyValue() }

// Version is bumped by every mutation; values obtained from Full are
// valid only while the version is unchanged.
func (s *Synopsis) Version() int64 { return s.version }

// SlotBound returns an exclusive upper bound on live-node slots. It
// grows to the peak live-node count and never beyond it (dead nodes'
// slots are recycled), so flat tables sized by it stay proportional to
// the synopsis, not to its history.
func (s *Synopsis) SlotBound() int { return s.slotBound }

func (s *Synopsis) newNode(label *LabelTree) *Node {
	n := &Node{id: s.nextID, slot: s.takeSlot(), label: label, store: s.factory.NewStore()}
	s.nextID++
	return n
}

// takeSlot hands out a dense slot, preferring recycled ones.
func (s *Synopsis) takeSlot() int {
	if k := len(s.freeSlots); k > 0 {
		slot := s.freeSlots[k-1]
		s.freeSlots = s.freeSlots[:k-1]
		return slot
	}
	slot := s.slotBound
	s.slotBound++
	return slot
}

// releaseSlot returns a dead node's slot to the free list.
func (s *Synopsis) releaseSlot(n *Node) {
	s.freeSlots = append(s.freeSlots, n.slot)
}

// Insert observes one document: builds its skeleton and records its
// paths and identifier in the synopsis. It returns the document
// identifier assigned to the document (identifiers increase from 0).
func (s *Synopsis) Insert(t *xmltree.Tree) uint64 {
	id := s.nextDocID
	s.nextDocID++
	s.docs++
	s.version++

	if t == nil || t.Root == nil {
		return id
	}
	if s.opts.Kind == matchset.KindSets && s.reservoir != nil {
		accepted, evicted, hadEviction := s.reservoir.Offer(id)
		if hadEviction {
			s.removeDocEverywhere(evicted)
		}
		if !accepted {
			return id
		}
	}
	s.liveDocs++
	sk := xmltree.Skeleton(t)
	counters := s.opts.Kind == matchset.KindCounters
	if counters {
		s.root.store.Add(id)
	}
	s.insertChild(s.root, sk.Root, id, counters)
	return id
}

// insertChild finds or creates the synopsis child of sn corresponding to
// the skeleton node c, then recurses over c's children. In Counters mode
// every visited node's count is incremented; otherwise the document ID
// is stored only at nodes where a skeleton path ends (skeleton leaves,
// or folded nodes that fully absorb the remaining subtree).
func (s *Synopsis) insertChild(sn *Node, c *xmltree.Node, id uint64, counters bool) {
	// 1. Existing real child with a matching root tag?
	var child *Node
	for _, k := range sn.children {
		if k.label.Tag == c.Label {
			child = k
			break
		}
	}
	if child == nil {
		// 2. Fully absorbed by a folded label of sn? Then the document
		// shares the folded structure: it simply joins sn's matching
		// set (which already is the union of the folded subtree's
		// sets).
		for _, nested := range sn.label.Nested {
			if absorbs(nested, c) {
				if counters {
					// Counter stores hold full counts; the fold target
					// was already incremented by the caller (it is sn).
					return
				}
				sn.store.Add(id)
				return
			}
		}
		child = s.newNode(NewLabel(c.Label))
		child.parents = append(child.parents, sn)
		sn.children = append(sn.children, child)
	}
	if counters {
		child.store.Add(id)
	} else if len(c.Children) == 0 {
		child.store.Add(id)
	}
	for _, cc := range c.Children {
		s.insertChild(child, cc, id, counters)
	}
}

// absorbs reports whether the folded label subtree lt fully covers the
// skeleton subtree sk: same tag and every child of sk absorbed by some
// nested child of lt.
func absorbs(lt *LabelTree, sk *xmltree.Node) bool {
	if lt.Tag != sk.Label {
		return false
	}
	for _, c := range sk.Children {
		ok := false
		for _, nl := range lt.Nested {
			if absorbs(nl, c) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// RemoveDocument expires a document from the synopsis: its identifier
// is deleted from every store and nodes left without matching
// information are pruned. Only sample-based representations support
// removal (counters cannot forget). This powers sliding-window
// estimation; with the reservoir active, eviction happens automatically
// instead.
func (s *Synopsis) RemoveDocument(id uint64) error {
	if s.opts.Kind == matchset.KindCounters {
		return fmt.Errorf("synopsis: counters do not support document removal")
	}
	s.removeDocEverywhere(id)
	if s.liveDocs > 0 {
		s.liveDocs--
	}
	return nil
}

// removeDocEverywhere deletes an evicted document identifier from all
// stores and prunes nodes whose matching information vanished (Sets
// mode: "new arrivals may cause several nodes in the synopsis to be
// deleted").
func (s *Synopsis) removeDocEverywhere(id uint64) {
	s.version++
	for _, n := range s.Nodes() {
		n.store.Remove(id)
	}
	// Prune empty leaves bottom-up.
	for {
		removed := false
		for _, n := range s.Nodes() {
			if n != s.root && n.IsLeaf() && n.store.Entries() == 0 {
				s.detach(n)
				removed = true
			}
		}
		if !removed {
			return
		}
	}
}

// detach removes n from the DAG entirely.
func (s *Synopsis) detach(n *Node) {
	for _, p := range n.parents {
		p.children = removeNode(p.children, n)
	}
	for _, c := range n.children {
		c.parents = removeNode(c.parents, n)
	}
	n.parents, n.children = nil, nil
	n.dead = true
	s.releaseSlot(n)
	s.version++
}

func removeNode(list []*Node, n *Node) []*Node {
	out := list[:0]
	for _, x := range list {
		if x != n {
			out = append(out, x)
		}
	}
	return out
}

// Nodes returns every live node (root included) in a deterministic
// order (by id).
func (s *Synopsis) Nodes() []*Node {
	seen := make(map[int]bool)
	var out []*Node
	var rec func(n *Node)
	rec = func(n *Node) {
		if seen[n.id] {
			return
		}
		seen[n.id] = true
		out = append(out, n)
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(s.root)
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Full returns the full matching set of a node: its stored sample
// unioned with the full sets of all its descendants (paper, Section
// 3.2: "a hash sample of the full matching set at a node t … can be
// computed by recursively unioning the hash samples across all
// descendants of t"). In Counters mode the stored count already is the
// full count. Results are cached until the next mutation.
func (s *Synopsis) Full(n *Node) matchset.Value {
	if s.opts.Kind == matchset.KindCounters {
		return n.store.Value()
	}
	c := s.cache.Load()
	for c == nil || c.version != s.version {
		fresh := &fullCache{version: s.version, vals: make(map[int]matchset.Value)}
		if s.cache.CompareAndSwap(c, fresh) {
			c = fresh
			break
		}
		c = s.cache.Load()
	}
	return s.fullRec(c, n)
}

func (s *Synopsis) fullRec(c *fullCache, n *Node) matchset.Value {
	if v, ok := c.get(n.id); ok {
		return v
	}
	v := n.store.Value()
	for _, ch := range n.children {
		v = v.Union(s.fullRec(c, ch))
	}
	c.put(n.id, v)
	return v
}

// RootCard returns the denominator |S(rs)| of Algorithm 2: the
// (estimated) number of documents covered by the synopsis. With
// ExactRootCard, or in Counters mode, this is exact.
func (s *Synopsis) RootCard() float64 {
	switch {
	case s.opts.Kind == matchset.KindCounters:
		return float64(s.docs)
	case s.opts.Kind == matchset.KindSets:
		if s.reservoir == nil {
			// NoReservoir mode: every live (non-removed) document is
			// represented exactly.
			return float64(s.liveDocs)
		}
		// The sample covers reservoir-many documents; selectivities are
		// fractions within the uniform sample.
		return float64(s.reservoir.Size())
	case s.opts.ExactRootCard:
		return float64(s.docs)
	default:
		return s.Full(s.root).Card()
	}
}

// Stats describes the synopsis size in the paper's accounting units.
type Stats struct {
	// Nodes is the number of live nodes (including the root).
	Nodes int
	// Edges is the number of parent→child edges.
	Edges int
	// Labels is the total number of label-tree nodes over all nodes.
	Labels int
	// Entries is the total number of matching-set entries over all
	// stores.
	Entries int
}

// Size is the paper's |HS|: nodes + edges + labels + entries, each of
// which fits a 32-bit integer.
func (st Stats) Size() int { return st.Nodes + st.Edges + st.Labels + st.Entries }

// Stats computes the current size statistics.
func (s *Synopsis) Stats() Stats {
	var st Stats
	for _, n := range s.Nodes() {
		st.Nodes++
		st.Edges += len(n.children)
		st.Labels += n.label.Size()
		st.Entries += n.store.Entries()
	}
	return st
}

// Size returns Stats().Size().
func (s *Synopsis) Size() int { return s.Stats().Size() }

// Validate checks structural invariants: parent/child links are
// symmetric, there are no cycles, no dead nodes are reachable, and the
// root has no parents. It returns the first violation found.
func (s *Synopsis) Validate() error {
	if len(s.root.parents) != 0 {
		return fmt.Errorf("synopsis: root has parents")
	}
	state := make(map[int]int) // 0 unvisited, 1 in-stack, 2 done
	var rec func(n *Node) error
	rec = func(n *Node) error {
		if n.dead {
			return fmt.Errorf("synopsis: dead node %d reachable", n.id)
		}
		switch state[n.id] {
		case 1:
			return fmt.Errorf("synopsis: cycle through node %d", n.id)
		case 2:
			return nil
		}
		state[n.id] = 1
		for _, c := range n.children {
			if !containsNode(c.parents, n) {
				return fmt.Errorf("synopsis: node %d missing parent backlink to %d", c.id, n.id)
			}
			if err := rec(c); err != nil {
				return err
			}
		}
		state[n.id] = 2
		return nil
	}
	if err := rec(s.root); err != nil {
		return err
	}
	for _, n := range s.Nodes() {
		for _, p := range n.parents {
			if !containsNode(p.children, n) {
				return fmt.Errorf("synopsis: node %d has parent %d without child link", n.id, p.id)
			}
		}
	}
	return nil
}

func containsNode(list []*Node, n *Node) bool {
	for _, x := range list {
		if x == n {
			return true
		}
	}
	return false
}

// String renders the synopsis structure with estimated cardinalities,
// for debugging and the compression example. Shared (merged) nodes are
// printed once and referenced by id afterwards.
func (s *Synopsis) String() string {
	var b strings.Builder
	printed := make(map[int]bool)
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s #%d |S|≈%.1f", n.label, n.id, s.Full(n).Card())
		if printed[n.id] {
			b.WriteString(" (shared, see above)\n")
			return
		}
		printed[n.id] = true
		b.WriteByte('\n')
		for _, c := range n.children {
			rec(c, depth+1)
		}
	}
	rec(s.root, 0)
	return b.String()
}
