package synopsis

import (
	"strings"
	"testing"

	"treesim/internal/matchset"
	"treesim/internal/xmltree"
)

// corpus6 is a 6-document corpus engineered to reproduce the paper's
// Section 3.2 counter-example: elements b and d are mutually exclusive
// (P(a/b) = P(a/d) = 1/2), while f and o always co-occur under c
// (P(c/f) = P(c/o) = P(both) = 1/3).
var corpus6 = []string{
	"a(b(e))",
	"a(b(f))",
	"a(b,c(f,o))",
	"a(d,c(f,o))",
	"a(d(e))",
	"a(d(q))",
}

func buildCorpus(t *testing.T, s *Synopsis, docs []string) {
	t.Helper()
	for _, d := range docs {
		tr, err := xmltree.ParseCompact(d)
		if err != nil {
			t.Fatalf("parse %q: %v", d, err)
		}
		s.Insert(tr)
	}
}

// findPath walks real children by root tag.
func findPath(t *testing.T, s *Synopsis, tags ...string) *Node {
	t.Helper()
	n := s.Root()
	for _, tag := range tags {
		var next *Node
		for _, c := range n.Children() {
			if c.Label().Tag == tag {
				next = c
				break
			}
		}
		if next == nil {
			t.Fatalf("path %v: no child %q under %s", tags, tag, n.Label())
		}
		n = next
	}
	return n
}

func newSets(seed int64, k int) *Synopsis {
	return New(Options{Kind: matchset.KindSets, SetCapacity: k, Seed: seed})
}

func newHashes(seed int64, h int) *Synopsis {
	return New(Options{Kind: matchset.KindHashes, HashCapacity: h, Seed: seed})
}

func newCounters(seed int64) *Synopsis {
	return New(Options{Kind: matchset.KindCounters, Seed: seed})
}

func TestInsertAssignsSequentialIDs(t *testing.T) {
	s := newSets(1, 100)
	for want := uint64(0); want < 5; want++ {
		tr, _ := xmltree.ParseCompact("a(b)")
		if got := s.Insert(tr); got != want {
			t.Fatalf("Insert returned id %d, want %d", got, want)
		}
	}
	if s.DocsObserved() != 5 {
		t.Errorf("DocsObserved = %d, want 5", s.DocsObserved())
	}
}

func TestStructureAfterCorpus(t *testing.T) {
	s := newSets(1, 100)
	buildCorpus(t, s, corpus6)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	a := findPath(t, s, "a")
	if len(a.Children()) != 3 {
		t.Fatalf("a has %d children, want 3 (b,c,d)", len(a.Children()))
	}
	// Full matching sets (Sets mode with ample capacity is exact).
	cases := []struct {
		path []string
		want float64
	}{
		{[]string{"a"}, 6},
		{[]string{"a", "b"}, 3},
		{[]string{"a", "c"}, 2},
		{[]string{"a", "d"}, 3},
		{[]string{"a", "c", "f"}, 2},
		{[]string{"a", "c", "o"}, 2},
		{[]string{"a", "b", "e"}, 1},
		{[]string{"a", "d", "e"}, 1},
	}
	for _, c := range cases {
		n := findPath(t, s, c.path...)
		if got := s.Full(n).Card(); got != c.want {
			t.Errorf("Full(%v) card = %v, want %v", c.path, got, c.want)
		}
	}
	if got := s.RootCard(); got != 6 {
		t.Errorf("RootCard = %v, want 6", got)
	}
}

func TestCountersFullCounts(t *testing.T) {
	s := newCounters(1)
	buildCorpus(t, s, corpus6)
	cases := []struct {
		path []string
		want float64
	}{
		{[]string{"a"}, 6},
		{[]string{"a", "b"}, 3},
		{[]string{"a", "d"}, 3},
		{[]string{"a", "c"}, 2},
		{[]string{"a", "c", "f"}, 2},
	}
	for _, c := range cases {
		n := findPath(t, s, c.path...)
		if got := s.Full(n).Card(); got != c.want {
			t.Errorf("counter Full(%v) = %v, want %v", c.path, got, c.want)
		}
	}
	if got := s.RootCard(); got != 6 {
		t.Errorf("RootCard = %v, want 6", got)
	}
}

func TestHashesExactUnderCapacity(t *testing.T) {
	s := newHashes(7, 1000)
	buildCorpus(t, s, corpus6)
	b := findPath(t, s, "a", "b")
	if got := s.Full(b).Card(); got != 3 {
		t.Errorf("hash Full(a/b) = %v, want 3 (no subsampling yet)", got)
	}
}

func TestSkeletonDeduplication(t *testing.T) {
	// a(b(c),b(d)) must produce a single b node holding both c and d.
	s := newSets(1, 100)
	tr, _ := xmltree.ParseCompact("a(b(c),b(d))")
	s.Insert(tr)
	a := findPath(t, s, "a")
	if len(a.Children()) != 1 {
		t.Fatalf("a has %d children, want 1", len(a.Children()))
	}
	b := findPath(t, s, "a", "b")
	if len(b.Children()) != 2 {
		t.Fatalf("b has %d children, want 2", len(b.Children()))
	}
}

func TestSetsReservoirEviction(t *testing.T) {
	s := newSets(3, 5)
	for i := 0; i < 200; i++ {
		tr, _ := xmltree.ParseCompact("a(b)")
		s.Insert(tr)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.RootCard(); got != 5 {
		t.Errorf("RootCard = %v, want reservoir size 5", got)
	}
	if s.DocsObserved() != 200 {
		t.Errorf("DocsObserved = %d, want 200", s.DocsObserved())
	}
	b := findPath(t, s, "a", "b")
	if got := s.Full(b).Card(); got != 5 {
		t.Errorf("Full(a/b) = %v, want 5 (every sampled doc has the path)", got)
	}
}

func TestSetsEvictionPrunesEmptyNodes(t *testing.T) {
	// With a 1-slot reservoir, inserting two structurally different
	// docs leaves only the surviving doc's paths.
	s := newSets(5, 1)
	t1, _ := xmltree.ParseCompact("a(x)")
	t2, _ := xmltree.ParseCompact("a(y)")
	s.Insert(t1)
	s.Insert(t2)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	a := findPath(t, s, "a")
	// Exactly one of x/y must remain, depending on which doc survived.
	if len(a.Children()) != 1 {
		t.Fatalf("a has %d children, want exactly 1 after eviction pruning (synopsis:\n%s)",
			len(a.Children()), s)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := newSets(1, 100)
	tr, _ := xmltree.ParseCompact("a(b)")
	s.Insert(tr)
	st := s.Stats()
	// Nodes: root, a, b. Edges: root→a, a→b. Labels: 3 plain labels.
	// Entries: only b stores the doc id.
	want := Stats{Nodes: 3, Edges: 2, Labels: 3, Entries: 1}
	if st != want {
		t.Errorf("Stats = %+v, want %+v", st, want)
	}
	if st.Size() != 9 {
		t.Errorf("Size = %d, want 9", st.Size())
	}
}

func TestFoldLeafLossless(t *testing.T) {
	s := newSets(1, 100)
	buildCorpus(t, s, corpus6)
	sizeBefore := s.Size()
	c := findPath(t, s, "a", "c")
	f := findPath(t, s, "a", "c", "f")
	if err := s.FoldLeaf(f); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.Label().String(); got != "c[f]" {
		t.Errorf("folded label = %q, want c[f]", got)
	}
	// c's stored set now holds the union; full set unchanged.
	if got := s.Full(c).Card(); got != 2 {
		t.Errorf("Full(c) after fold = %v, want 2", got)
	}
	if s.Size() >= sizeBefore {
		t.Errorf("fold did not shrink synopsis: %d -> %d", sizeBefore, s.Size())
	}
	// Fold o as well; c becomes a leaf with doubly nested label.
	o := findPath(t, s, "a", "c", "o")
	if err := s.FoldLeaf(o); err != nil {
		t.Fatal(err)
	}
	if got := c.Label().String(); got != "c[f][o]" {
		t.Errorf("folded label = %q, want c[f][o]", got)
	}
	if !c.IsLeaf() {
		t.Error("c should be a leaf after folding both children")
	}
}

func TestFoldErrors(t *testing.T) {
	s := newSets(1, 100)
	buildCorpus(t, s, corpus6)
	if err := s.FoldLeaf(s.Root()); err == nil {
		t.Error("folding root should fail")
	}
	b := findPath(t, s, "a", "b")
	if err := s.FoldLeaf(b); err == nil {
		t.Error("folding non-leaf should fail")
	}
	a := findPath(t, s, "a")
	_ = a
	// "a" is a child of the root; its leaves are foldable, but "a"
	// itself (if it were a leaf) would not be. Construct that case:
	s2 := newSets(1, 100)
	tr, _ := xmltree.ParseCompact("solo")
	s2.Insert(tr)
	solo := findPath(t, s2, "solo")
	if err := s2.FoldLeaf(solo); err == nil {
		t.Error("folding into the root should fail")
	}
	// Counters cannot fold.
	s3 := newCounters(1)
	buildCorpus(t, s3, corpus6)
	e := findPath(t, s3, "a", "b", "e")
	if err := s3.FoldLeaf(e); err == nil {
		t.Error("folding with counters should fail")
	}
}

func TestAbsorptionAfterFold(t *testing.T) {
	s := newSets(1, 100)
	buildCorpus(t, s, corpus6)
	c := findPath(t, s, "a", "c")
	for _, tag := range []string{"f", "o"} {
		leaf := findPath(t, s, "a", "c", tag)
		if err := s.FoldLeaf(leaf); err != nil {
			t.Fatal(err)
		}
	}
	nodesBefore := len(s.Nodes())
	fullBefore := s.Full(c).Card()
	// A new document whose c-subtree is covered by the folded label is
	// absorbed without creating nodes.
	tr, _ := xmltree.ParseCompact("a(c(f))")
	s.Insert(tr)
	if got := len(s.Nodes()); got != nodesBefore {
		t.Errorf("absorbed insert created nodes: %d -> %d", nodesBefore, got)
	}
	if got := s.Full(c).Card(); got != fullBefore+1 {
		t.Errorf("Full(c) = %v, want %v", got, fullBefore+1)
	}
	// A document extending beyond the folded structure creates a real
	// child below the folded node.
	tr2, _ := xmltree.ParseCompact("a(c(f(deep)))")
	s.Insert(tr2)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	fNode := findPath(t, s, "a", "c", "f")
	if got := s.Full(fNode).Card(); got != 1 {
		t.Errorf("re-created f full card = %v, want 1", got)
	}
}

func TestMergeLeavesCreatesDAG(t *testing.T) {
	s := newSets(1, 100)
	buildCorpus(t, s, corpus6)
	eb := findPath(t, s, "a", "b", "e")
	ed := findPath(t, s, "a", "d", "e")
	if err := s.MergeNodes(eb, ed); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(eb.Parents()) != 2 {
		t.Errorf("merged node has %d parents, want 2", len(eb.Parents()))
	}
	// Paper semantics: merged store is the intersection of full sets —
	// here disjoint, hence empty.
	if got := s.Full(eb).Card(); got != 0 {
		t.Errorf("merged full card = %v, want 0 (disjoint sets)", got)
	}
	// Both b and d now reach the shared node.
	if findPath(t, s, "a", "b", "e") != findPath(t, s, "a", "d", "e") {
		t.Error("b/e and d/e should be the same node after merge")
	}
}

func TestMergeIdenticalSetsLossless(t *testing.T) {
	// Two same-label leaves with identical matching sets merge without
	// loss.
	s := newSets(1, 100)
	buildCorpus(t, s, []string{"r(x(k),y(k))", "r(x(k),y(k))"})
	xk := findPath(t, s, "r", "x", "k")
	yk := findPath(t, s, "r", "y", "k")
	if err := s.MergeNodes(xk, yk); err != nil {
		t.Fatal(err)
	}
	if got := s.Full(xk).Card(); got != 2 {
		t.Errorf("merged full card = %v, want 2", got)
	}
}

func TestMergeErrors(t *testing.T) {
	s := newSets(1, 100)
	buildCorpus(t, s, corpus6)
	b := findPath(t, s, "a", "b")
	d := findPath(t, s, "a", "d")
	if err := s.MergeNodes(b, d); err == nil {
		t.Error("merging different labels should fail")
	}
	fb := findPath(t, s, "a", "b", "f")
	fc := findPath(t, s, "a", "c", "f")
	if err := s.MergeNodes(fb, fb); err == nil {
		t.Error("merging a node with itself should fail")
	}
	if err := s.MergeNodes(fb, fc); err != nil {
		t.Errorf("merging same-label leaves should succeed: %v", err)
	}
	// Non-leaf same-label nodes with different children cannot merge.
	s2 := newSets(1, 100)
	buildCorpus(t, s2, []string{"r(x(p),z(x(q)))"})
	x1 := findPath(t, s2, "r", "x")
	x2 := findPath(t, s2, "r", "z", "x")
	if err := s2.MergeNodes(x1, x2); err == nil {
		t.Error("merging non-leaves with different children should fail")
	}
}

func TestMergeNonLeafSameChildren(t *testing.T) {
	// Merge the leaf children first; then the parents share children
	// and can merge bottom-up, as the paper prescribes.
	s := newSets(1, 100)
	buildCorpus(t, s, []string{"r(u(x(k)),v(x(k)))"})
	k1 := findPath(t, s, "r", "u", "x", "k")
	k2 := findPath(t, s, "r", "v", "x", "k")
	if err := s.MergeNodes(k1, k2); err != nil {
		t.Fatal(err)
	}
	x1 := findPath(t, s, "r", "u", "x")
	x2 := findPath(t, s, "r", "v", "x")
	if err := s.MergeNodes(x1, x2); err != nil {
		t.Fatalf("same-children merge failed: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if findPath(t, s, "r", "u", "x") != findPath(t, s, "r", "v", "x") {
		t.Error("x nodes should be shared")
	}
}

func TestDeleteLeaf(t *testing.T) {
	s := newSets(1, 100)
	buildCorpus(t, s, corpus6)
	q := findPath(t, s, "a", "d", "q")
	sizeBefore := s.Size()
	if err := s.DeleteLeaf(q); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Size() >= sizeBefore {
		t.Error("delete did not shrink synopsis")
	}
	d := findPath(t, s, "a", "d")
	// Doc 5 (a(d(q))) loses its path below d; d's full set shrinks to
	// stored {3} ∪ e{4}.
	if got := s.Full(d).Card(); got != 2 {
		t.Errorf("Full(d) after delete = %v, want 2", got)
	}
	if err := s.DeleteLeaf(d); err == nil {
		t.Error("deleting non-leaf should fail")
	}
	if err := s.DeleteLeaf(s.Root()); err == nil {
		t.Error("deleting root should fail")
	}
}

func TestCandidatesOrdering(t *testing.T) {
	s := newSets(1, 100)
	buildCorpus(t, s, corpus6)
	folds := s.FoldCandidates()
	if len(folds) == 0 {
		t.Fatal("expected fold candidates")
	}
	for i := 1; i < len(folds); i++ {
		if folds[i].Score > folds[i-1].Score {
			t.Fatal("fold candidates not sorted by descending score")
		}
	}
	// f and o under c have Jaccard 1 with c: they must come first.
	if folds[0].Score != 1 {
		t.Errorf("best fold score = %v, want 1 (f/o under c)", folds[0].Score)
	}
	merges := s.MergeCandidates()
	for i := 1; i < len(merges); i++ {
		if merges[i].Score > merges[i-1].Score {
			t.Fatal("merge candidates not sorted by descending score")
		}
	}
	dels := s.DeleteCandidates()
	for i := 1; i < len(dels); i++ {
		if s.Full(dels[i]).Card() < s.Full(dels[i-1]).Card() {
			t.Fatal("delete candidates not sorted by ascending cardinality")
		}
	}
}

func TestCompressReachesTarget(t *testing.T) {
	s := newHashes(11, 100)
	// A corpus with redundancy: mandatory children (foldable), repeated
	// labels (mergeable), rare paths (deletable).
	docs := []string{
		"r(head(title,date),body(sec(par,par),sec(par)))",
		"r(head(title,date),body(sec(par)))",
		"r(head(title,date),body(sec(par,note)))",
		"r(head(title,date),body(sec(par),appendix))",
	}
	for i := 0; i < 5; i++ {
		buildCorpus(t, s, docs)
	}
	base := s.Size()
	ratio := s.Compress(CompressOptions{TargetRatio: 0.5})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if ratio > 0.6 {
		t.Errorf("achieved ratio %v, want ≤ ~0.5 of %d", ratio, base)
	}
	if s.Size() > base {
		t.Error("compression increased size")
	}
}

func TestCompressCountersDeletesOnly(t *testing.T) {
	s := newCounters(1)
	buildCorpus(t, s, corpus6)
	ratio := s.Compress(CompressOptions{TargetRatio: 0.6})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if ratio > 0.75 {
		t.Errorf("counters compression achieved only %v", ratio)
	}
	// Root and the top of the tree must survive.
	if findPath(t, s, "a") == nil {
		t.Error("a vanished")
	}
}

func TestCompressLosslessStageOnly(t *testing.T) {
	// With target 1.0 nothing needs pruning, but lossless folds are
	// still applied (they never hurt).
	s := newSets(1, 100)
	buildCorpus(t, s, corpus6)
	s.Compress(CompressOptions{TargetRatio: 1.0})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	c := findPath(t, s, "a", "c")
	if c.Label().IsPlain() {
		t.Error("lossless folds (f,o into c) were not applied")
	}
}

func TestVersionBumpsInvalidateFull(t *testing.T) {
	s := newSets(1, 100)
	buildCorpus(t, s, corpus6[:3])
	a := findPath(t, s, "a")
	v1 := s.Full(a).Card()
	tr, _ := xmltree.ParseCompact("a(zz)")
	s.Insert(tr)
	v2 := s.Full(a).Card()
	if v2 != v1+1 {
		t.Errorf("Full(a) after insert = %v, want %v", v2, v1+1)
	}
}

func TestStringSmoke(t *testing.T) {
	s := newSets(1, 100)
	buildCorpus(t, s, corpus6)
	out := s.String()
	for _, want := range []string{"/.", "a", "b", "c", "d"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestLabelTree(t *testing.T) {
	l := NewLabel("c")
	l.Nested = append(l.Nested, NewLabel("f"), &LabelTree{Tag: "o", Nested: []*LabelTree{NewLabel("n")}})
	if got := l.String(); got != "c[f][o[n]]" {
		t.Errorf("String = %q, want c[f][o[n]]", got)
	}
	if got := l.Size(); got != 4 {
		t.Errorf("Size = %d, want 4", got)
	}
	// Equality is order-insensitive.
	m := NewLabel("c")
	m.Nested = append(m.Nested, &LabelTree{Tag: "o", Nested: []*LabelTree{NewLabel("n")}}, NewLabel("f"))
	if !l.Equal(m) {
		t.Error("labels differing only in nested order should be equal")
	}
	cp := l.Clone()
	cp.Nested[0].Tag = "zzz"
	if l.Nested[0].Tag == "zzz" {
		t.Error("Clone aliased nested labels")
	}
}

func TestEmptyDocumentInsert(t *testing.T) {
	s := newSets(1, 10)
	id := s.Insert(nil)
	if id != 0 || s.DocsObserved() != 1 {
		t.Error("nil tree should still consume a document id")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSlotRecyclingUnderChurn: node slots must be recycled when nodes
// die, so SlotBound (which sizes the selectivity evaluator's flat memo)
// tracks the peak live-node count, not the total ever created.
func TestSlotRecyclingUnderChurn(t *testing.T) {
	s := New(Options{Kind: matchset.KindSets, NoReservoir: true})
	labels := []string{"p", "q", "r", "s", "t", "u", "v", "w"}
	for round := 0; round < 40; round++ {
		lbl := labels[round%len(labels)] + strings.Repeat("x", round%3)
		tr, err := xmltree.ParseCompact("a(" + lbl + ")")
		if err != nil {
			t.Fatal(err)
		}
		id := s.Insert(tr)
		if err := s.RemoveDocument(id); err != nil {
			t.Fatal(err)
		}
	}
	if s.nextID < 40 {
		t.Fatalf("expected node-ID churn, nextID = %d", s.nextID)
	}
	if bound := s.SlotBound(); bound > 8 {
		t.Errorf("SlotBound = %d after churn, want <= 8 (peak live nodes)", bound)
	}
	// Slots of live nodes must be unique and within bound.
	seen := make(map[int]bool)
	for _, n := range s.Nodes() {
		if n.Slot() < 0 || n.Slot() >= s.SlotBound() {
			t.Errorf("slot %d out of [0, %d)", n.Slot(), s.SlotBound())
		}
		if seen[n.Slot()] {
			t.Errorf("duplicate slot %d", n.Slot())
		}
		seen[n.Slot()] = true
	}
}
