package telemetry

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// This file is the operational event plane: a bounded in-memory ring of
// noteworthy happenings (link transitions, advert expiries, rebuilds,
// sheds) and a slog.Handler wrapper that tees qualifying log records
// into it. The ring answers "what has this node been through lately"
// (the daemon's GET /events) without requiring log scraping, the same
// way the trace ring answers it for individual publications.

// DefaultEventCapacity bounds the event ring when the caller does not
// choose a capacity.
const DefaultEventCapacity = 256

// Event is one retained operational event — a flattened snapshot of a
// log record, cheap to copy and JSON-ready.
type Event struct {
	// TimeUnixNS is the event's wall-clock timestamp.
	TimeUnixNS int64 `json:"time_unix_ns"`
	// Seq is the event's 1-based position in the node's lifetime event
	// stream; gaps against a previous scrape mean the ring wrapped.
	Seq uint64 `json:"seq"`
	// Level is the slog level name (WARN, ERROR, ...).
	Level string `json:"level"`
	// Message is the record message.
	Message string `json:"msg"`
	// Attrs are the record's attributes, flattened to strings with
	// group paths joined by dots.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// EventRing retains the most recent events in a fixed-capacity ring.
// All methods are safe for concurrent use.
type EventRing struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
}

// NewEventRing creates a ring retaining up to capacity events
// (DefaultEventCapacity if capacity <= 0).
func NewEventRing(capacity int) *EventRing {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &EventRing{buf: make([]Event, 0, capacity)}
}

// Add appends an event, evicting the oldest when full, and stamps its
// lifetime sequence number.
func (r *EventRing) Add(e Event) {
	r.mu.Lock()
	r.total++
	e.Seq = r.total
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % len(r.buf)
	}
	r.mu.Unlock()
}

// Snapshot returns the retained events, oldest first.
func (r *EventRing) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total reports how many events have ever been added (≥ retained).
func (r *EventRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// TeeEvents wraps a slog.Handler so every record at or above min is
// also captured into the ring. Capture is independent of the inner
// handler's level: a daemon logging at ERROR still retains WARN events
// for GET /events.
func TeeEvents(next slog.Handler, ring *EventRing, min slog.Level) slog.Handler {
	return &teeHandler{next: next, ring: ring, min: min}
}

type teeHandler struct {
	next   slog.Handler
	ring   *EventRing
	min    slog.Level
	attrs  []slog.Attr // accumulated WithAttrs, group paths pre-joined
	prefix string      // accumulated WithGroup path ("a.b.")
}

func (h *teeHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return level >= h.min || h.next.Enabled(ctx, level)
}

func (h *teeHandler) Handle(ctx context.Context, rec slog.Record) error {
	if rec.Level >= h.min {
		e := Event{
			TimeUnixNS: rec.Time.UnixNano(),
			Level:      rec.Level.String(),
			Message:    rec.Message,
		}
		if e.TimeUnixNS == 0 || rec.Time.IsZero() {
			e.TimeUnixNS = time.Now().UnixNano()
		}
		n := len(h.attrs) + rec.NumAttrs()
		if n > 0 {
			e.Attrs = make(map[string]string, n)
			for _, a := range h.attrs {
				flattenAttr(e.Attrs, "", a)
			}
			rec.Attrs(func(a slog.Attr) bool {
				flattenAttr(e.Attrs, h.prefix, a)
				return true
			})
		}
		h.ring.Add(e)
	}
	if h.next.Enabled(ctx, rec.Level) {
		return h.next.Handle(ctx, rec)
	}
	return nil
}

func (h *teeHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	if len(attrs) == 0 {
		return h
	}
	nh := *h
	nh.next = h.next.WithAttrs(attrs)
	nh.attrs = make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	nh.attrs = append(nh.attrs, h.attrs...)
	for _, a := range attrs {
		a.Key = h.prefix + a.Key
		nh.attrs = append(nh.attrs, a)
	}
	return &nh
}

func (h *teeHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := *h
	nh.next = h.next.WithGroup(name)
	nh.prefix = h.prefix + name + "."
	return &nh
}

// flattenAttr renders one attribute into the map, expanding groups into
// dot-joined keys.
func flattenAttr(dst map[string]string, prefix string, a slog.Attr) {
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		gp := prefix
		if a.Key != "" {
			gp = prefix + a.Key + "."
		}
		for _, ga := range v.Group() {
			flattenAttr(dst, gp, ga)
		}
		return
	}
	if a.Key == "" {
		return
	}
	dst[prefix+a.Key] = v.String()
}
