package telemetry

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
)

func TestNewTraceIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool, 10000)
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if len(id) != TraceIDLen {
			t.Fatalf("trace id %q: len %d, want %d", id, len(id), TraceIDLen)
		}
		for _, c := range id {
			if !strings.ContainsRune("0123456789abcdef", c) {
				t.Fatalf("trace id %q: non-hex rune %q", id, c)
			}
		}
		if seen[id] {
			t.Fatalf("trace id %q repeated within 10k draws", id)
		}
		seen[id] = true
	}
}

// BenchmarkNewTraceID pins that trace-ID generation stays cheap enough
// for always-on tracing: the ChaCha8 stream costs tens of nanoseconds
// per draw where the former per-call crypto/rand read cost a syscall.
func BenchmarkNewTraceID(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if NewTraceID() == "" {
			b.Fatal("empty trace id")
		}
	}
}

func BenchmarkNewTraceIDParallel(b *testing.B) {
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if NewTraceID() == "" {
				b.Fatal("empty trace id")
			}
		}
	})
}

func TestEventRingWrapAndOrder(t *testing.T) {
	r := NewEventRing(3)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("fresh ring holds %d events", len(got))
	}
	for i := 1; i <= 5; i++ {
		r.Add(Event{Message: strings.Repeat("x", i)})
	}
	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(evs))
	}
	// Oldest first: messages of length 3, 4, 5; lifetime seqs 3, 4, 5.
	for i, e := range evs {
		if len(e.Message) != i+3 {
			t.Errorf("event %d: message len %d, want %d", i, len(e.Message), i+3)
		}
		if e.Seq != uint64(i+3) {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, i+3)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
}

func TestEventRingDefaultCapacity(t *testing.T) {
	r := NewEventRing(0)
	for i := 0; i < DefaultEventCapacity+10; i++ {
		r.Add(Event{})
	}
	if got := len(r.Snapshot()); got != DefaultEventCapacity {
		t.Fatalf("retained %d events, want %d", got, DefaultEventCapacity)
	}
}

// TestTeeEventsCapture covers the tee contract: WARN+ records land in
// the ring with flattened attrs (WithAttrs, WithGroup, and inline),
// INFO records do not, and capture happens even when the console
// handler's level would have suppressed the record entirely.
func TestTeeEventsCapture(t *testing.T) {
	var console bytes.Buffer
	ring := NewEventRing(8)
	// Console at ERROR: warnings must reach the ring but not the buffer.
	inner := slog.NewTextHandler(&console, &slog.HandlerOptions{Level: slog.LevelError})
	logger := slog.New(TeeEvents(inner, ring, slog.LevelWarn)).With("node", "n1")

	logger.Info("routine", "k", "v")
	logger.WithGroup("link").Warn("link down", "peer", "n2", "fails", 3)
	logger.Error("boom", "err", "kaput")

	evs := ring.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("ring holds %d events, want 2 (INFO filtered): %+v", len(evs), evs)
	}
	warn := evs[0]
	if warn.Level != "WARN" || warn.Message != "link down" {
		t.Fatalf("first event = %+v, want WARN link down", warn)
	}
	if warn.Attrs["node"] != "n1" {
		t.Errorf("WithAttrs attr lost: %+v", warn.Attrs)
	}
	if warn.Attrs["link.peer"] != "n2" || warn.Attrs["link.fails"] != "3" {
		t.Errorf("grouped attrs not flattened: %+v", warn.Attrs)
	}
	if warn.TimeUnixNS == 0 {
		t.Error("event has no timestamp")
	}
	if evs[1].Level != "ERROR" || evs[1].Attrs["err"] != "kaput" {
		t.Errorf("second event = %+v, want ERROR with err attr", evs[1])
	}

	out := console.String()
	if strings.Contains(out, "link down") {
		t.Errorf("console at ERROR printed a warning: %q", out)
	}
	if !strings.Contains(out, "boom") {
		t.Errorf("console missed the error record: %q", out)
	}
}

func TestTeeEventsEnabled(t *testing.T) {
	ring := NewEventRing(4)
	inner := slog.NewTextHandler(&bytes.Buffer{}, &slog.HandlerOptions{Level: slog.LevelError})
	h := TeeEvents(inner, ring, slog.LevelWarn)
	if !h.Enabled(context.Background(), slog.LevelWarn) {
		t.Error("WARN must be enabled (ring capture) even with console at ERROR")
	}
	if h.Enabled(context.Background(), slog.LevelInfo) {
		t.Error("INFO enabled despite both sinks filtering it")
	}
}
