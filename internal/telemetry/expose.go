package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4), families in lexical order,
// series in registration order. Gauge funcs are evaluated here, under
// no registry lock beyond the snapshotting of the series list, so they
// may take their component's own locks freely.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.sortedNames()...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	// Copy each family's series list so evaluation happens outside the
	// registry lock (gauge funcs may register nothing but may block).
	type famSnap struct {
		name, help string
		typ        Type
		series     []*series
	}
	snaps := make([]famSnap, 0, len(fams))
	for _, f := range fams {
		fs := famSnap{name: f.name, help: f.help, typ: f.typ}
		for _, ls := range f.order {
			fs.series = append(fs.series, f.series[ls])
		}
		snaps = append(snaps, fs)
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range snaps {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.c != nil:
				writeSample(bw, f.name, s.labels, "", float64(s.c.Load()))
			case s.g != nil:
				writeSample(bw, f.name, s.labels, "", float64(s.g.Load()))
			case s.fn != nil:
				writeSample(bw, f.name, s.labels, "", s.fn())
			case s.h != nil:
				snap := s.h.Snapshot()
				var cum uint64
				for i, c := range snap.Counts {
					cum += c
					le := "+Inf"
					if i < len(snap.Bounds) {
						le = formatFloat(snap.Bounds[i])
					}
					writeSample(bw, f.name+"_bucket", joinLabels(s.labels, `le="`+le+`"`), "", float64(cum))
				}
				writeSample(bw, f.name+"_sum", s.labels, "", snap.Sum)
				writeSample(bw, f.name+"_count", s.labels, "", float64(snap.Count))
			}
		}
	}
	return bw.Flush()
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func writeSample(w io.Writer, name, labels, suffix string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s%s %s\n", name, suffix, formatFloat(v))
	} else {
		fmt.Fprintf(w, "%s%s{%s} %s\n", name, suffix, labels, formatFloat(v))
	}
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Sample is one parsed exposition line: a metric name (histogram
// series appear under their _bucket/_sum/_count sample names), its
// label set, and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseText parses Prometheus text exposition — the subset
// WritePrometheus emits plus ordinary escaped label values — and
// returns every sample. It is strict: any malformed line is an error,
// which is what lets CI treat "ParseText succeeded" as a format check.
// Comment (#) and blank lines are skipped.
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	// Name runs to '{' or whitespace.
	i := strings.IndexAny(line, "{ \t")
	if i <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may follow the value; take the first field.
	if j := strings.IndexAny(rest, " \t"); j >= 0 {
		rest = rest[:j]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a `{k="v",...}` body starting at in[0] == '{' and
// returns the index just past the closing brace.
func parseLabels(in string, out map[string]string) (int, error) {
	i := 1
	for {
		for i < len(in) && (in[i] == ' ' || in[i] == ',') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("unterminated label set in %q", in)
		}
		key := strings.TrimSpace(in[i : i+eq])
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", in)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(in) {
				return 0, fmt.Errorf("unterminated label value in %q", in)
			}
			c := in[i]
			if c == '\\' && i+1 < len(in) {
				switch in[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(in[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		out[key] = b.String()
	}
}

func validMetricName(name string) bool {
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return name != ""
}

// SumByName folds samples into per-name totals (summing across label
// sets) — the convenient shape for delta computation in treesim-bench
// and threshold checks in cmd/metriccheck.
func SumByName(samples []Sample) map[string]float64 {
	m := make(map[string]float64, len(samples))
	for _, s := range samples {
		m[s.Name] += s.Value
	}
	return m
}

// Names returns the sorted distinct sample names.
func Names(samples []Sample) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range samples {
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}
