package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets with atomic
// operations only — no locks, no allocation on Observe. Bucket upper
// bounds are set at construction and never change, which is what makes
// snapshots from different shards (or different scrape cycles)
// mergeable by plain element-wise addition. This subsumes the broker's
// old per-shard latency reservoirs: where the reservoir kept the last
// N raw samples per shard and sorted them on demand, the histogram
// keeps exact bucket counts over ALL samples and answers quantiles
// within one bucket's relative error.
type Histogram struct {
	bounds []float64       // sorted upper bounds; implicit +Inf bucket follows
	counts []atomic.Uint64 // len(bounds)+1; counts[i] is observations <= bounds[i]
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given bucket upper bounds
// (ascending; an +Inf overflow bucket is implicit). Unregistered
// histograms are useful on their own for per-shard aggregation.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// ExpBuckets returns count exponentially spaced upper bounds starting
// at start and growing by factor: start, start·f, start·f², ...
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, count >= 1")
	}
	b := make([]float64, count)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DefaultLatencyBuckets covers 1µs to ~57s in nanoseconds at ×1.5
// resolution — every latency histogram in the repo uses these, so
// cross-metric quantile comparisons share bucket error.
func DefaultLatencyBuckets() []float64 {
	return ExpBuckets(1e3, 1.5, 44)
}

// Observe records one sample. Safe for concurrent use; the only
// non-wait-free step is the CAS loop maintaining the float sum.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v. Inlined rather than
	// sort.SearchFloat64s to keep the hot path free of func values.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(ns int64) { h.Observe(float64(ns)) }

// HistogramSnapshot is a consistent-enough point-in-time copy of a
// histogram: each bucket count is read atomically, so totals may be
// off by in-flight observations but never corrupt. Snapshots with
// identical bounds merge by addition.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, ascending; Counts has one extra +Inf slot
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the current bucket state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	var total uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		total += c
	}
	// Derive Count from the buckets rather than h.count so the snapshot
	// is self-consistent under concurrent Observe calls.
	s.Count = total
	s.Sum = math.Float64frombits(h.sum.Load())
	return s
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge adds other's buckets into s. Panics on mismatched bounds —
// merging histograms with different resolution is always a bug.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	if !equalBounds(s.Bounds, other.Bounds) {
		panic("telemetry: merging histogram snapshots with different buckets")
	}
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
	s.Count += other.Count
	s.Sum += other.Sum
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the bucket holding the target rank, the same
// estimate Prometheus's histogram_quantile computes. The answer is
// exact to within the bucket's width; an empty snapshot returns 0.
// Ranks landing in the +Inf overflow bucket return the highest finite
// bound (there is no upper edge to interpolate toward).
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(s.Bounds) {
			// Overflow bucket: clamp to the largest finite bound.
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		if c == 0 {
			return upper
		}
		// Position of the target rank inside this bucket.
		below := float64(cum - c)
		frac := (rank - below) / float64(c)
		return lower + (upper-lower)*frac
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}
