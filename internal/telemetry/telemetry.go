// Package telemetry is the repo's dependency-free metrics substrate: a
// registry of lock-free counters, gauges, and fixed-bucket histograms
// with Prometheus-text exposition, plus a bounded publication-trace
// ring (trace.go) for hop-by-hop forwarding spans.
//
// Design constraints, in order:
//
//   - Hot-path writes are a single atomic op. Counter.Add and
//     Gauge.Set are one uncontended atomic; Histogram.Observe is two
//     atomics plus a CAS loop for the float sum. No locks, no maps, no
//     allocation after the handle is created.
//   - Handles are registered once (startup or link-add time) and held
//     by the instrumented code; the registry map is only consulted at
//     registration and scrape time.
//   - Metric names are a stable public interface (see the README's
//     Observability catalogue): renames are breaking changes.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use, but handles normally come from Registry.Counter so
// they appear in the exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one and returns the new value.
func (c *Counter) Inc() uint64 { return c.v.Add(1) }

// Add adds n and returns the new value (free with atomic.Add, and it
// lets callers sample every Nth event without a second load).
func (c *Counter) Add(n uint64) uint64 { return c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Type discriminates metric families in the registry and exposition.
type Type int

const (
	TypeCounter Type = iota
	TypeGauge
	TypeHistogram
)

func (t Type) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labelled instance within a family. Exactly one of the
// value fields is set, matching the family type (gauges may instead
// carry fn, evaluated at scrape time).
type series struct {
	labels string // rendered `key="value",...` (sorted), "" when unlabelled
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	typ    Type
	series map[string]*series // keyed by rendered label string
	order  []string           // registration order of label keys, for stable output
}

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry. All methods
// are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted lazily at scrape
	dirty    bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelString renders "k1=v1 k2=v2 ..." pairs as a canonical, sorted
// Prometheus label body. Pairs must have even length; odd input
// panics (programmer error at registration time, never on a hot path).
func labelString(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("telemetry: odd label pair count")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// getFamily returns (creating if needed) the family for name, checking
// the type on every access: registering the same name under two types
// is a programming error and panics immediately rather than producing
// corrupt exposition.
func (r *Registry) getFamily(name, help string, typ Type) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
		r.dirty = true
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	return f
}

// Counter returns the counter for name with the given label pairs
// (k1, v1, k2, v2, ...), creating it on first use. Repeated calls with
// the same name and labels return the same handle, so independent
// components may share a registry safely.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, TypeCounter)
	ls := labelString(labelPairs)
	if s, ok := f.series[ls]; ok {
		return s.c
	}
	s := &series{labels: ls, c: &Counter{}}
	f.series[ls] = s
	f.order = append(f.order, ls)
	return s.c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, TypeGauge)
	ls := labelString(labelPairs)
	if s, ok := f.series[ls]; ok {
		if s.g == nil {
			panic(fmt.Sprintf("telemetry: gauge %q{%s} already registered as a gauge func", name, ls))
		}
		return s.g
	}
	s := &series{labels: ls, g: &Gauge{}}
	f.series[ls] = s
	f.order = append(f.order, ls)
	return s.g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for values already maintained under a component's own locks
// (live subscription count, queue occupancy) where mirroring into an
// atomic would be a second bookkeeping path. fn must be safe to call
// from any goroutine. Re-registering the same name+labels is a no-op
// (the first fn wins).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, TypeGauge)
	ls := labelString(labelPairs)
	if _, ok := f.series[ls]; ok {
		return
	}
	f.series[ls] = &series{labels: ls, fn: fn}
	f.order = append(f.order, ls)
}

// Histogram returns the histogram for name+labels, creating it with
// the given bucket upper bounds on first use (see NewHistogram). Later
// calls ignore bounds and return the existing handle; mismatched
// bounds across call sites panic, since merged snapshots would be
// meaningless.
func (r *Registry) Histogram(name, help string, bounds []float64, labelPairs ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, TypeHistogram)
	ls := labelString(labelPairs)
	if s, ok := f.series[ls]; ok {
		if !equalBounds(s.h.bounds, bounds) {
			panic(fmt.Sprintf("telemetry: histogram %q{%s} re-registered with different buckets", name, ls))
		}
		return s.h
	}
	s := &series{labels: ls, h: NewHistogram(bounds)}
	f.series[ls] = s
	f.order = append(f.order, ls)
	return s.h
}

// sortedNames returns family names in lexical order, cached between
// scrapes while no new family has been registered.
func (r *Registry) sortedNames() []string {
	if r.dirty {
		r.names = r.names[:0]
		for name := range r.families {
			r.names = append(r.names, name)
		}
		sort.Strings(r.names)
		r.dirty = false
	}
	return r.names
}
