package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// Same name+labels returns the same handle.
	if r.Counter("test_ops_total", "ops") != c {
		t.Fatal("re-registration returned a different counter handle")
	}
	if r.Counter("test_ops_total", "ops", "shard", "0") == c {
		t.Fatal("different labels must return a different handle")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type mismatch")
		}
	}()
	r.Gauge("test_x", "")
}

// exactQuantile is the reference implementation: nearest-rank on the
// sorted sample set.
func exactQuantile(samples []float64, q float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// bucketFor returns the (lower, upper] interval of the bucket a value
// falls in, the histogram's inherent resolution limit.
func bucketFor(bounds []float64, v float64) (float64, float64) {
	lower := 0.0
	for _, b := range bounds {
		if v <= b {
			return lower, b
		}
		lower = b
	}
	return lower, math.Inf(1)
}

func TestHistogramQuantileVsExact(t *testing.T) {
	bounds := DefaultLatencyBuckets()
	rng := rand.New(rand.NewSource(42))
	distributions := map[string]func() float64{
		// Log-uniform over 2µs..2s, the shape of real latency spread.
		"loguniform": func() float64 { return 2e3 * math.Pow(1e6, rng.Float64()) },
		// Lognormal centred near 60µs, like BrokerPublish.
		"lognormal": func() float64 { return 60e3 * math.Exp(rng.NormFloat64()*0.8) },
		// Bimodal: fast path + slow tail.
		"bimodal": func() float64 {
			if rng.Float64() < 0.9 {
				return 10e3 + rng.Float64()*5e3
			}
			return 5e6 + rng.Float64()*1e6
		},
	}
	for name, gen := range distributions {
		h := NewHistogram(bounds)
		samples := make([]float64, 20000)
		for i := range samples {
			samples[i] = gen()
			h.Observe(samples[i])
		}
		snap := h.Snapshot()
		if snap.Count != uint64(len(samples)) {
			t.Fatalf("%s: snapshot count %d, want %d", name, snap.Count, len(samples))
		}
		var wantSum float64
		for _, v := range samples {
			wantSum += v
		}
		if math.Abs(snap.Sum-wantSum)/wantSum > 1e-9 {
			t.Fatalf("%s: sum %g, want %g", name, snap.Sum, wantSum)
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			est := snap.Quantile(q)
			exact := exactQuantile(samples, q)
			// The estimate must land within the bucket containing the
			// exact quantile — the histogram's guaranteed resolution.
			lo, hi := bucketFor(bounds, exact)
			if est < lo || est > hi {
				t.Errorf("%s: q%.2f estimate %g outside exact value's bucket (%g, %g], exact %g",
					name, q, est, lo, hi, exact)
			}
		}
	}
}

func TestHistogramMergeAssociativity(t *testing.T) {
	bounds := ExpBuckets(1, 2, 10)
	rng := rand.New(rand.NewSource(7))
	// Three "shards" with different sample counts.
	shards := make([]*Histogram, 3)
	var all []float64
	for i := range shards {
		shards[i] = NewHistogram(bounds)
		for j := 0; j < 1000*(i+1); j++ {
			v := rng.Float64() * 2000
			shards[i].Observe(v)
			all = append(all, v)
		}
	}
	// (a+b)+c
	left := shards[0].Snapshot()
	left.Merge(shards[1].Snapshot())
	left.Merge(shards[2].Snapshot())
	// a+(b+c)
	bc := shards[1].Snapshot()
	bc.Merge(shards[2].Snapshot())
	right := shards[0].Snapshot()
	right.Merge(bc)
	if left.Count != right.Count || left.Count != uint64(len(all)) {
		t.Fatalf("merge counts differ: %d vs %d (want %d)", left.Count, right.Count, len(all))
	}
	for i := range left.Counts {
		if left.Counts[i] != right.Counts[i] {
			t.Fatalf("bucket %d differs after re-associated merge: %d vs %d", i, left.Counts[i], right.Counts[i])
		}
	}
	if math.Abs(left.Sum-right.Sum) > 1e-6 {
		t.Fatalf("merge sums differ: %g vs %g", left.Sum, right.Sum)
	}
	// Merged quantile equals a single histogram over the union.
	union := NewHistogram(bounds)
	for _, v := range all {
		union.Observe(v)
	}
	us := union.Snapshot()
	for _, q := range []float64{0.5, 0.99} {
		if got, want := left.Quantile(q), us.Quantile(q); math.Abs(got-want) > 1e-9 {
			t.Fatalf("q%.2f: merged %g != union %g", q, got, want)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 8))
	var wg sync.WaitGroup
	const goroutines, per = 8, 5000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Float64() * 300)
			}
		}(int64(g))
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != goroutines*per {
		t.Fatalf("count %d, want %d", snap.Count, goroutines*per)
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_sends_total", "sends", "peer", "b").Add(3)
	r.Counter("test_sends_total", "sends", "peer", `we"ird\`).Add(1)
	r.Gauge("test_pending", "pending").Set(-2)
	r.GaugeFunc("test_live", "live", func() float64 { return 12 })
	h := r.Histogram("test_lat_ns", "latency", ExpBuckets(10, 10, 3))
	h.Observe(5)
	h.Observe(50)
	h.Observe(1e9) // overflow bucket

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseText on own output: %v\n%s", err, text)
	}
	sums := SumByName(samples)
	checks := map[string]float64{
		"test_sends_total":  4,
		"test_pending":      -2,
		"test_live":         12,
		"test_lat_ns_count": 3,
		"test_lat_ns_sum":   5 + 50 + 1e9,
	}
	for name, want := range checks {
		if got, ok := sums[name]; !ok || got != want {
			t.Errorf("%s = %g (present=%v), want %g\n%s", name, got, ok, want, text)
		}
	}
	// Bucket lines must be cumulative and labelled with le.
	var infSeen bool
	for _, s := range samples {
		if s.Name == "test_lat_ns_bucket" && s.Labels["le"] == "+Inf" {
			infSeen = true
			if s.Value != 3 {
				t.Errorf("+Inf bucket = %g, want 3", s.Value)
			}
		}
	}
	if !infSeen {
		t.Errorf("no +Inf bucket emitted:\n%s", text)
	}
	// Escaped label round-trips.
	var escaped bool
	for _, s := range samples {
		if s.Labels["peer"] == `we"ird\` {
			escaped = true
		}
	}
	if !escaped {
		t.Errorf("escaped label value did not round-trip:\n%s", text)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	bad := []string{
		"no_value_here\n",
		"1leading_digit 3\n",
		`unterminated{a="b 3` + "\n",
		"name notafloat\n",
	}
	for _, in := range bad {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("ParseText(%q) succeeded, want error", in)
		}
	}
	// Timestamps after the value are tolerated.
	s, err := ParseText(strings.NewReader("ok_metric 3 1712345678\n"))
	if err != nil || len(s) != 1 || s[0].Value != 3 {
		t.Errorf("timestamped sample: %v %v", s, err)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(4)
	for i := 0; i < 6; i++ {
		id := "keep"
		if i < 3 {
			id = "evicted"
		}
		r.Add(Span{Trace: id, Seq: uint64(i)})
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("ring len %d, want 4", got)
	}
	spans := r.Get("keep")
	if len(spans) != 3 {
		t.Fatalf("got %d spans for keep, want 3", len(spans))
	}
	for i, s := range spans {
		if s.Seq != uint64(i+3) {
			t.Fatalf("spans out of order: %v", spans)
		}
	}
	if left := r.Get("evicted"); len(left) != 1 {
		t.Fatalf("eviction: %d old spans retained, want exactly 1", len(left))
	}
	if id := NewTraceID(); len(id) != TraceIDLen {
		t.Fatalf("trace id %q has length %d", id, len(id))
	}
}
