package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	mathrand "math/rand/v2"
	"sync"
)

// Publication tracing: every publish is stamped with a random trace
// ID that rides the overlay wire codec; each node a publication
// touches appends one Span to its bounded ring. Collecting the spans
// for one ID across nodes reconstructs the forwarding tree — who
// received it from whom, how long matching took at each hop, and how
// wide each hop fanned out.

// TraceIDLen is the length of a generated trace ID in hex characters.
const TraceIDLen = 16

// traceSeed is drawn from crypto/rand once at process start to key the
// per-call generator; after that NewTraceID never touches the kernel.
var traceSeed = func() [32]byte {
	var s [32]byte
	if _, err := rand.Read(s[:]); err != nil {
		// crypto/rand never fails on supported platforms; an unseeded
		// (deterministic) ID stream still traces correctly within one
		// process, it just risks cross-process collisions.
		return [32]byte{}
	}
	return s
}()

// traceRand generates trace IDs: a ChaCha8 stream seeded once from
// crypto/rand, behind a plain mutex. Trace IDs ride the publish hot
// path (every traced publish draws one), so they must not cost a
// syscall-backed crypto/rand read each — they are correlation keys,
// not secrets, and only need to be unique.
var traceRand = struct {
	sync.Mutex
	*mathrand.ChaCha8
}{ChaCha8: mathrand.NewChaCha8(traceSeed)}

// NewTraceID returns a fresh random trace ID (8 bytes, hex).
func NewTraceID() string {
	traceRand.Lock()
	v := traceRand.Uint64()
	traceRand.Unlock()
	var b [TraceIDLen / 2]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return hex.EncodeToString(b[:])
}

// Span is one node's record of handling one traced publication.
type Span struct {
	Trace string `json:"trace"`
	// Node is the recording broker's overlay ID.
	Node string `json:"node"`
	// From is the overlay link the publication arrived on; empty at the
	// origin node. The From chain is what makes the span set a tree.
	From   string `json:"from,omitempty"`
	Origin string `json:"origin"`
	Seq    uint64 `json:"seq"`
	// StartUnixNS is when this node began handling the publication.
	StartUnixNS int64 `json:"start_unix_ns"`
	// QueueWaitNS is time spent blocked on (or shed by) the broker's
	// ingest pipeline before matching began.
	QueueWaitNS int64 `json:"queue_wait_ns"`
	// MatchNS is time spent in shard routing (match + local delivery).
	MatchNS int64 `json:"match_ns"`
	// Deliveries is the local fan-out: subscriptions delivered to here.
	Deliveries int `json:"deliveries"`
	// ForwardedTo lists the peer links this node forwarded on; its
	// length is the hop's forward fan-out.
	ForwardedTo []string `json:"forwarded_to,omitempty"`
	// Shed reports that the broker shed the publication under
	// backpressure (it was NOT matched locally, though it may still
	// have been forwarded).
	Shed bool `json:"shed,omitempty"`
}

// TraceRing is a bounded, concurrency-safe ring of spans. When full,
// new spans overwrite the oldest — tracing is a diagnostic window, not
// a durable log. Lookup is a linear scan; with the default capacity of
// a few thousand spans that is microseconds, and only /trace requests
// pay it.
type TraceRing struct {
	mu   sync.Mutex
	buf  []Span
	next int
	full bool
}

// DefaultTraceCapacity is the per-node span ring size when the owner
// does not choose one.
const DefaultTraceCapacity = 4096

// NewTraceRing returns a ring holding up to capacity spans
// (DefaultTraceCapacity if capacity <= 0).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceRing{buf: make([]Span, capacity)}
}

// Add appends one span, evicting the oldest when full.
func (r *TraceRing) Add(s Span) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Get returns all retained spans for a trace ID, oldest first.
func (r *TraceRing) Get(trace string) []Span {
	var out []Span
	r.mu.Lock()
	n := r.next
	if r.full {
		for _, s := range r.buf[n:] {
			if s.Trace == trace {
				out = append(out, s)
			}
		}
	}
	for _, s := range r.buf[:n] {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	r.mu.Unlock()
	return out
}

// Len reports how many spans the ring currently retains.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}
