package xmlgen

import "treesim/internal/dtd"

// Calibrate tunes generation options so that documents average roughly
// targetTagPairs tag pairs (the paper's corpora average ~100). It binary
// searches a scale factor applied to the optional-inclusion and
// repetition rates, probing each candidate with a small pilot corpus.
// The returned Options are deterministic for a given (DTD, target,
// seed).
func Calibrate(d *dtd.DTD, targetTagPairs int, seed int64) Options {
	base := Options{Seed: seed}.withDefaults()
	lo, hi := 0.02, 4.0
	best := base
	const pilot = 40
	for iter := 0; iter < 14; iter++ {
		mid := (lo + hi) / 2
		cand := base
		cand.OptProb = clamp01(base.OptProb * mid)
		cand.RepeatMean = base.RepeatMean * mid
		cand.MaxNodes = targetTagPairs * 10
		st := Stats(New(d, cand).GenerateN(pilot))
		if st.MeanTagPairs > float64(targetTagPairs) {
			hi = mid
		} else {
			lo = mid
		}
		best = cand
	}
	return best
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 0.95 {
		return 0.95
	}
	return v
}
