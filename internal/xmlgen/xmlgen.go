// Package xmlgen generates random XML documents from a DTD. It stands in
// for IBM's XML Generator (the tool the paper used, long unavailable):
// documents are valid expansions of the DTD's content models, with
// uniform choice selection, configurable optional-inclusion and
// repetition rates, a depth cap (the paper used up to 10 levels) and a
// size target (~100 tag pairs on average in the paper).
package xmlgen

import (
	"fmt"
	"math/rand"

	"treesim/internal/dtd"
	"treesim/internal/xmltree"
)

// Options configures document generation.
type Options struct {
	// MaxDepth caps document depth in levels (root = level 1). Elements
	// whose mandatory content cannot fit are truncated (emitted without
	// children), as the original tool did. Default 10.
	MaxDepth int
	// OptProb is the probability that a "?" particle is included.
	// Default 0.5.
	OptProb float64
	// RepeatMean is the mean number of repetitions beyond the minimum
	// for "*" and "+" particles (geometric). Default 1.0.
	RepeatMean float64
	// MaxNodes hard-caps document size; expansion stops adding optional
	// and repeated content beyond it. Default 1000.
	MaxNodes int
	// EmitText turns #PCDATA into leaf value nodes drawn from Values.
	EmitText bool
	// Values is the text vocabulary when EmitText is set.
	Values []string
	// Seed drives the generator deterministically.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = 10
	}
	if o.OptProb == 0 {
		o.OptProb = 0.5
	}
	if o.RepeatMean == 0 {
		o.RepeatMean = 1.0
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 1000
	}
	if o.EmitText && len(o.Values) == 0 {
		o.Values = []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	}
	return o
}

// Generator produces random documents valid for one DTD.
type Generator struct {
	d        *dtd.DTD
	opts     Options
	rng      *rand.Rand
	minDepth map[string]int
	nodes    int // node budget tracking for the current document
}

// New returns a generator for the DTD. It panics if the DTD is invalid.
func New(d *dtd.DTD, opts Options) *Generator {
	if err := d.Validate(); err != nil {
		panic(fmt.Sprintf("xmlgen: %v", err))
	}
	return &Generator{
		d:        d,
		opts:     opts.withDefaults(),
		rng:      rand.New(rand.NewSource(opts.Seed)),
		minDepth: d.MinDepths(),
	}
}

// Generate produces one document.
func (g *Generator) Generate() *xmltree.Tree {
	g.nodes = 0
	root := g.expand(g.d.RootName, 1)
	return &xmltree.Tree{Root: root}
}

// GenerateN produces n documents.
func (g *Generator) GenerateN(n int) []*xmltree.Tree {
	out := make([]*xmltree.Tree, n)
	for i := range out {
		out[i] = g.Generate()
	}
	return out
}

func (g *Generator) expand(name string, depth int) *xmltree.Node {
	g.nodes++
	n := &xmltree.Node{Label: name}
	e := g.d.Element(name)
	if e == nil || depth >= g.opts.MaxDepth {
		return n // truncate at the depth cap
	}
	g.expandContent(n, e.Content, depth)
	return n
}

// expandContent appends children of n according to the content model c.
func (g *Generator) expandContent(n *xmltree.Node, c *dtd.Content, depth int) {
	for i, reps := 0, g.occurrences(c.Quant, g.contentFits(c, depth)); i < reps; i++ {
		g.expandOnce(n, c, depth)
	}
}

// expandOnce expands one occurrence of the (unquantified) particle.
func (g *Generator) expandOnce(n *xmltree.Node, c *dtd.Content, depth int) {
	switch c.Kind {
	case dtd.KindEmpty:
	case dtd.KindAny:
		// ANY: include a single random element, space permitting.
		if g.nodes < g.opts.MaxNodes {
			names := g.d.Names()
			pick := names[g.rng.Intn(len(names))]
			if depth+g.minDepth[pick] <= g.opts.MaxDepth {
				n.Children = append(n.Children, g.expand(pick, depth+1))
			}
		}
	case dtd.KindPCData:
		if g.opts.EmitText && g.nodes < g.opts.MaxNodes {
			g.nodes++
			n.Children = append(n.Children, &xmltree.Node{
				Label: g.opts.Values[g.rng.Intn(len(g.opts.Values))],
			})
		}
	case dtd.KindName:
		n.Children = append(n.Children, g.expand(c.Name, depth+1))
	case dtd.KindSeq:
		for _, p := range c.Parts {
			g.expandContent(n, p, depth)
		}
	case dtd.KindChoice:
		// Uniform choice among alternatives that fit the depth budget;
		// fall back to the shallowest alternative when none fit.
		var fit []*dtd.Content
		for _, p := range c.Parts {
			if g.contentFits(p, depth) {
				fit = append(fit, p)
			}
		}
		if len(fit) == 0 {
			fit = []*dtd.Content{g.shallowest(c.Parts)}
		}
		pick := fit[g.rng.Intn(len(fit))]
		g.expandContent(n, pick, depth)
	}
}

// occurrences draws the repetition count for a quantifier. When the
// content does not fit the depth budget or the node budget is exhausted,
// optional content is dropped (mandatory content still occurs once and
// is truncated further down).
func (g *Generator) occurrences(q dtd.Quant, fits bool) int {
	overBudget := g.nodes >= g.opts.MaxNodes
	switch q {
	case dtd.Opt:
		if !fits || overBudget || g.rng.Float64() >= g.opts.OptProb {
			return 0
		}
		return 1
	case dtd.Star:
		if !fits || overBudget {
			return 0
		}
		return g.geometric()
	case dtd.Plus:
		if !fits || overBudget {
			return 1 // mandatory at least once
		}
		return 1 + g.geometric()
	default:
		return 1
	}
}

// geometric draws a count with mean RepeatMean.
func (g *Generator) geometric() int {
	p := g.opts.RepeatMean / (1 + g.opts.RepeatMean)
	k := 0
	for g.rng.Float64() < p && k < 50 {
		k++
	}
	return k
}

// contentFits reports whether one occurrence of c can be expanded within
// the depth budget at the given depth.
func (g *Generator) contentFits(c *dtd.Content, depth int) bool {
	return depth+g.contentMinDepth(c) <= g.opts.MaxDepth
}

func (g *Generator) contentMinDepth(c *dtd.Content) int {
	switch c.Kind {
	case dtd.KindName:
		return g.minDepth[c.Name]
	case dtd.KindSeq:
		max := 0
		for _, p := range c.Parts {
			if p.Quant == dtd.Opt || p.Quant == dtd.Star {
				continue
			}
			if v := g.contentMinDepth(p); v > max {
				max = v
			}
		}
		return max
	case dtd.KindChoice:
		min := 1 << 20
		for _, p := range c.Parts {
			if v := g.contentMinDepth(p); v < min {
				min = v
			}
		}
		return min
	default:
		return 0
	}
}

func (g *Generator) shallowest(parts []*dtd.Content) *dtd.Content {
	best := parts[0]
	bestD := g.contentMinDepth(best)
	for _, p := range parts[1:] {
		if d := g.contentMinDepth(p); d < bestD {
			best, bestD = p, d
		}
	}
	return best
}

// CorpusStats summarizes a generated corpus.
type CorpusStats struct {
	Docs         int
	MeanTagPairs float64
	MaxDepth     int
	MinTagPairs  int
	MaxTagPairs  int
}

// Stats computes summary statistics over a corpus.
func Stats(docs []*xmltree.Tree) CorpusStats {
	st := CorpusStats{Docs: len(docs), MinTagPairs: 1 << 30}
	total := 0
	for _, d := range docs {
		tp := d.TagPairs()
		total += tp
		if tp < st.MinTagPairs {
			st.MinTagPairs = tp
		}
		if tp > st.MaxTagPairs {
			st.MaxTagPairs = tp
		}
		if dep := d.Depth(); dep > st.MaxDepth {
			st.MaxDepth = dep
		}
	}
	if len(docs) > 0 {
		st.MeanTagPairs = float64(total) / float64(len(docs))
	} else {
		st.MinTagPairs = 0
	}
	return st
}
