package xmlgen

import (
	"testing"

	"treesim/internal/dtd"
	"treesim/internal/xmltree"
)

func TestGenerateRespectsDTDStructure(t *testing.T) {
	d := dtd.Media()
	g := New(d, Options{Seed: 1})
	for i := 0; i < 100; i++ {
		doc := g.Generate()
		if doc.Root.Label != "media" {
			t.Fatalf("root = %q, want media", doc.Root.Label)
		}
		// Every parent-child pair must be allowed by the DTD.
		var check func(n *xmltree.Node)
		check = func(n *xmltree.Node) {
			allowed := make(map[string]bool)
			for _, c := range d.ChildNames(n.Label) {
				allowed[c] = true
			}
			for _, c := range n.Children {
				if !allowed[c.Label] {
					t.Fatalf("doc %d: %q is not an allowed child of %q", i, c.Label, n.Label)
				}
				check(c)
			}
		}
		check(doc.Root)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d := dtd.NITFLike()
	a := New(d, Options{Seed: 7}).GenerateN(5)
	b := New(d, Options{Seed: 7}).GenerateN(5)
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("doc %d differs across same-seed generators", i)
		}
	}
	c := New(d, Options{Seed: 8}).Generate()
	if a[0].String() == c.String() {
		t.Error("different seeds produced identical first documents")
	}
}

func TestDepthCap(t *testing.T) {
	for _, mk := range []func() *dtd.DTD{dtd.NITFLike, dtd.XCBLLike} {
		d := mk()
		g := New(d, Options{Seed: 3, MaxDepth: 10})
		for i := 0; i < 50; i++ {
			doc := g.Generate()
			if got := doc.Depth(); got > 10 {
				t.Fatalf("%s doc %d: depth %d exceeds cap 10", d.Name, i, got)
			}
		}
	}
}

func TestNodeBudget(t *testing.T) {
	d := dtd.NITFLike()
	g := New(d, Options{Seed: 5, MaxNodes: 200, RepeatMean: 3})
	for i := 0; i < 30; i++ {
		doc := g.Generate()
		// The budget is soft (mandatory content still completes), so
		// allow some overshoot but not runaway growth.
		if got := doc.TagPairs(); got > 600 {
			t.Fatalf("doc %d: %d tag pairs, budget 200 grossly exceeded", i, got)
		}
	}
}

func TestCorpusSizeRegime(t *testing.T) {
	// The paper's corpora average ~100 tag pairs; calibrated options
	// must land near that target for both schema shapes.
	for _, tc := range []struct {
		name string
		d    *dtd.DTD
	}{
		{"nitf-like", dtd.NITFLike()},
		{"xcbl-like", dtd.XCBLLike()},
	} {
		opts := Calibrate(tc.d, 100, 11)
		g := New(tc.d, opts)
		st := Stats(g.GenerateN(200))
		if st.MeanTagPairs < 40 || st.MeanTagPairs > 250 {
			t.Errorf("%s: calibrated mean tag pairs %.1f outside [40,250]", tc.name, st.MeanTagPairs)
		}
		if st.MaxDepth > 10 {
			t.Errorf("%s: max depth %d > 10", tc.name, st.MaxDepth)
		}
		t.Logf("%s: mean=%.1f min=%d max=%d depth=%d (OptProb=%.3f RepeatMean=%.3f)",
			tc.name, st.MeanTagPairs, st.MinTagPairs, st.MaxTagPairs, st.MaxDepth,
			opts.OptProb, opts.RepeatMean)
	}
}

func TestEmitText(t *testing.T) {
	d := dtd.Media()
	g := New(d, Options{Seed: 2, EmitText: true, Values: []string{"Mozart"}})
	found := false
	for i := 0; i < 20 && !found; i++ {
		doc := g.Generate()
		doc.Root.Walk(func(n *xmltree.Node) bool {
			if n.Label == "Mozart" {
				found = true
			}
			return true
		})
	}
	if !found {
		t.Error("EmitText never produced a text node")
	}
}

func TestNewPanicsOnInvalidDTD(t *testing.T) {
	bad := dtd.NewDTD("bad", "missing")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on invalid DTD")
		}
	}()
	New(bad, Options{})
}

func TestChoiceFallsBackToShallowest(t *testing.T) {
	// A choice whose alternatives are all deeper than the remaining
	// budget must pick the shallowest one rather than fail.
	d := dtd.NewDTD("t", "r")
	d.Declare("r", dtd.Name("pick", dtd.One))
	d.Declare("pick", dtd.Choice(dtd.Name("deep", dtd.One), dtd.Name("deeper", dtd.One)))
	d.Declare("deep", dtd.Name("leaf", dtd.One))
	d.Declare("deeper", dtd.Name("deep", dtd.One))
	d.Declare("leaf", dtd.Empty())
	g := New(d, Options{Seed: 1, MaxDepth: 3})
	for i := 0; i < 20; i++ {
		doc := g.Generate()
		if doc.Depth() > 3 {
			t.Fatalf("depth %d exceeds cap", doc.Depth())
		}
	}
}

func TestAnyContentModel(t *testing.T) {
	d := dtd.NewDTD("t", "r")
	d.Declare("r", &dtd.Content{Kind: dtd.KindAny})
	d.Declare("x", dtd.Empty())
	g := New(d, Options{Seed: 2})
	saw := false
	for i := 0; i < 50; i++ {
		doc := g.Generate()
		if len(doc.Root.Children) > 0 {
			saw = true
		}
	}
	if !saw {
		t.Error("ANY content never expanded to a child")
	}
}

func TestStatsEmpty(t *testing.T) {
	st := Stats(nil)
	if st.Docs != 0 || st.MeanTagPairs != 0 || st.MinTagPairs != 0 {
		t.Errorf("empty Stats = %+v", st)
	}
}

func TestVariabilityByShape(t *testing.T) {
	// News-like corpora must exhibit more distinct skeleton-path sets
	// than business-like ones — this is the property that drives the
	// paper's synopsis-size difference between NITF and xCBL.
	countPaths := func(d *dtd.DTD) int {
		g := New(d, Options{Seed: 13})
		paths := make(map[string]struct{})
		for _, doc := range g.GenerateN(100) {
			for _, p := range doc.LabelPaths() {
				paths[p] = struct{}{}
			}
		}
		return len(paths)
	}
	news := countPaths(dtd.NITFLike())
	// Normalize by element count: news has 123 elements, business 569.
	biz := countPaths(dtd.XCBLLike())
	newsRate := float64(news) / 123
	bizRate := float64(biz) / 569
	t.Logf("distinct paths: news=%d (%.2f/elem), business=%d (%.2f/elem)", news, newsRate, biz, bizRate)
	if newsRate <= bizRate {
		t.Errorf("news path variability (%.2f/elem) should exceed business (%.2f/elem)", newsRate, bizRate)
	}
}
