package xmltree

import "treesim/internal/intern"

// Flat is a reusable arena view of a tree: nodes in BFS order with
// contiguous child ranges, labels, and (when built with an intern
// table) dense label symbols. Matching hot paths work over Flat so a
// document is walked with integer indices instead of pointer chasing,
// and label comparisons become symbol comparisons.
//
// Node 0 is the root; the children of node i are the index range
// [ChildStart[i], ChildStart[i]+ChildCount[i]). A Flat is reloaded in
// place (Load), so one pooled instance serves many documents without
// reallocating.
type Flat struct {
	// Labels[i] is node i's label string.
	Labels []string
	// Syms[i] is the interned symbol of Labels[i], or intern.NoSym for
	// labels unknown to the table. Nil when Load was given no table.
	Syms []uint32
	// ChildStart / ChildCount delimit each node's children.
	ChildStart []int32
	ChildCount []int32
	// MaxDepth is the deepest node's depth (root = 0); -1 when empty.
	MaxDepth int

	depths []int32
	nodes  []*Node
}

// Len returns the number of nodes loaded.
func (f *Flat) Len() int { return len(f.Labels) }

// Load fills f from t, reusing f's storage. Document labels are
// resolved with tbl.Lookup — never interned — so the table only ever
// holds pattern vocabulary; a nil tbl skips symbol resolution. It
// returns the node count (0 for a nil or empty tree).
func (f *Flat) Load(t *Tree, tbl *intern.Table) int {
	// Zero the label tail too: after a huge document, entries past the
	// next document's length would otherwise pin its strings.
	clear(f.Labels)
	f.Labels = f.Labels[:0]
	f.Syms = f.Syms[:0]
	f.ChildStart = f.ChildStart[:0]
	f.ChildCount = f.ChildCount[:0]
	f.depths = f.depths[:0]
	f.MaxDepth = -1
	if t == nil || t.Root == nil {
		return 0
	}
	// BFS: appending every node's children consecutively makes each
	// child range contiguous by construction.
	nodes := f.nodes[:0]
	nodes = append(nodes, t.Root)
	f.depths = append(f.depths, 0)
	for i := 0; i < len(nodes); i++ {
		n := nodes[i]
		f.Labels = append(f.Labels, n.Label)
		if tbl != nil {
			f.Syms = append(f.Syms, tbl.Lookup(n.Label))
		}
		f.ChildStart = append(f.ChildStart, int32(len(nodes)))
		f.ChildCount = append(f.ChildCount, int32(len(n.Children)))
		d := f.depths[i]
		if int(d) > f.MaxDepth {
			f.MaxDepth = int(d)
		}
		for _, c := range n.Children {
			nodes = append(nodes, c)
			f.depths = append(f.depths, d+1)
		}
	}
	// Keep the arena but drop node pointers, so a pooled Flat does not
	// pin the last document it saw.
	for i := range nodes {
		nodes[i] = nil
	}
	f.nodes = nodes[:0]
	return len(f.Labels)
}
