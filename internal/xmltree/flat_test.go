package xmltree

import (
	"testing"

	"treesim/internal/intern"
)

func TestFlatLoad(t *testing.T) {
	tr, err := ParseCompact("a(b(d,e),c)")
	if err != nil {
		t.Fatal(err)
	}
	tbl := intern.NewTable()
	symA := tbl.ID("a")
	symD := tbl.ID("d")

	var f Flat
	if n := f.Load(tr, tbl); n != 5 {
		t.Fatalf("Load = %d nodes, want 5", n)
	}
	// BFS order: a, b, c, d, e.
	wantLabels := []string{"a", "b", "c", "d", "e"}
	for i, w := range wantLabels {
		if f.Labels[i] != w {
			t.Fatalf("Labels[%d] = %q, want %q", i, f.Labels[i], w)
		}
	}
	if f.Syms[0] != symA || f.Syms[3] != symD {
		t.Errorf("Syms = %v, want a=%d at 0, d=%d at 3", f.Syms, symA, symD)
	}
	if f.Syms[1] != intern.NoSym || f.Syms[2] != intern.NoSym {
		t.Errorf("unknown labels must map to NoSym, got %v", f.Syms)
	}
	if tbl.Len() != 2 {
		t.Errorf("Load interned document labels: table Len = %d, want 2", tbl.Len())
	}
	// Children of a (node 0) are nodes 1..2; of b (node 1) are 3..4.
	if f.ChildStart[0] != 1 || f.ChildCount[0] != 2 {
		t.Errorf("root children = [%d,+%d), want [1,+2)", f.ChildStart[0], f.ChildCount[0])
	}
	if f.ChildStart[1] != 3 || f.ChildCount[1] != 2 {
		t.Errorf("b children = [%d,+%d), want [3,+2)", f.ChildStart[1], f.ChildCount[1])
	}
	if f.ChildCount[2] != 0 || f.ChildCount[4] != 0 {
		t.Error("leaves must have zero children")
	}
	if f.MaxDepth != 2 {
		t.Errorf("MaxDepth = %d, want 2", f.MaxDepth)
	}

	// Reload in place with a different shape and no table.
	tr2, _ := ParseCompact("x")
	if n := f.Load(tr2, nil); n != 1 {
		t.Fatalf("reload = %d nodes, want 1", n)
	}
	if len(f.Syms) != 0 || f.Labels[0] != "x" || f.MaxDepth != 0 {
		t.Errorf("reload state: labels=%v syms=%v depth=%d", f.Labels, f.Syms, f.MaxDepth)
	}

	if n := f.Load(nil, nil); n != 0 || f.MaxDepth != -1 {
		t.Errorf("nil tree: n=%d depth=%d", n, f.MaxDepth)
	}
}
