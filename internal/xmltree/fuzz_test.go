package xmltree

import (
	"strings"
	"testing"
)

// FuzzParseXMLString drives the XML-to-tree parser with arbitrary
// documents — the broker daemon's publish endpoint feeds it untrusted
// network bodies, so it must never panic, and any document it accepts
// must serialize and re-parse to an identical tree.
func FuzzParseXMLString(f *testing.F) {
	for _, seed := range []string{
		"",
		"<a/>",
		"<a></a>",
		"<a><b/></a>",
		"<a><b>text</b><c attr=\"v\"/></a>",
		"<media><CD><title/></CD></media>",
		"<a>&lt;&amp;</a>",
		"<a><!-- comment --><b/></a>",
		"<?xml version=\"1.0\"?><a/>",
		"<a xmlns:x=\"u\"><x:b/></a>",
		"<unclosed>",
		"</late>",
		"<a><b></a></b>",
		"not xml at all",
		"<a>\x00</a>",
		"<\xff\xfe/>",
		strings.Repeat("<a>", 100) + strings.Repeat("</a>", 100),
		"<a b=\"c\" b=\"d\"/>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		// Text/attribute promotion must never panic either (promoted
		// "@name" labels are not serializable XML, so no round trip).
		Parse(strings.NewReader(s), ParseOptions{TextAsNodes: true, AttributesAsNodes: true})

		tr, err := Parse(strings.NewReader(s), ParseOptions{})
		if err != nil {
			return
		}
		if tr == nil || tr.Root == nil {
			t.Fatalf("Parse(%q) accepted a nil tree", s)
		}
		// Serialize/re-parse round trip. Go's decoder is lenient about
		// names in prefixed form ("<A:0/>" has local name "0"), and the
		// tree flattens namespaces to local names, so the serialized
		// form is not always re-parseable XML — but whenever it is, it
		// must describe the identical tree.
		out, err := XMLString(tr, false)
		if err != nil {
			t.Fatalf("accepted %q but cannot serialize: %v", s, err)
		}
		tr2, err := Parse(strings.NewReader(out), ParseOptions{})
		if err != nil {
			return
		}
		if tr.String() != tr2.String() {
			t.Fatalf("round trip changed %q:\n  %s\n  %s", s, tr, tr2)
		}
	})
}
