package xmltree

// Skeleton builds the skeleton tree Ts of a document T (paper, Section
// 3.1): in Ts each node has at most one child with a given tag. It is
// constructed top-down by coalescing children of a node that share a tag;
// the coalesced node inherits the union of the children of the merged
// nodes, and coalescing continues recursively.
//
// The skeleton preserves the set of root-to-node label paths of the
// document, and it is the unit of insertion into the document synopsis.
func Skeleton(t *Tree) *Tree {
	if t == nil || t.Root == nil {
		return &Tree{}
	}
	root := &Node{Label: t.Root.Label}
	coalesce(root, []*Node{t.Root})
	return &Tree{Root: root}
}

// coalesce populates dst.Children from the union of the children of all
// src nodes, grouping by tag. Each group becomes one skeleton child whose
// own children are recursively coalesced from the whole group.
func coalesce(dst *Node, group []*Node) {
	// Preserve first-seen order for determinism.
	var order []string
	byTag := make(map[string][]*Node)
	for _, src := range group {
		for _, c := range src.Children {
			if _, ok := byTag[c.Label]; !ok {
				order = append(order, c.Label)
			}
			byTag[c.Label] = append(byTag[c.Label], c)
		}
	}
	for _, tag := range order {
		child := &Node{Label: tag}
		dst.Children = append(dst.Children, child)
		coalesce(child, byTag[tag])
	}
}

// IsSkeleton reports whether no node of the tree has two children with
// the same tag, i.e. whether the tree is its own skeleton.
func IsSkeleton(t *Tree) bool {
	if t == nil || t.Root == nil {
		return true
	}
	ok := true
	t.Root.Walk(func(n *Node) bool {
		seen := make(map[string]struct{}, len(n.Children))
		for _, c := range n.Children {
			if _, dup := seen[c.Label]; dup {
				ok = false
				return false
			}
			seen[c.Label] = struct{}{}
		}
		return ok
	})
	return ok
}
