package xmltree

// Skeleton builds the skeleton tree Ts of a document T (paper, Section
// 3.1): in Ts each node has at most one child with a given tag. It is
// constructed top-down by coalescing children of a node that share a tag;
// the coalesced node inherits the union of the children of the merged
// nodes, and coalescing continues recursively.
//
// The skeleton preserves the set of root-to-node label paths of the
// document, and it is the unit of insertion into the document synopsis.
func Skeleton(t *Tree) *Tree {
	if t == nil || t.Root == nil {
		return &Tree{}
	}
	var a nodeArena
	root := a.new(t.Root.Label)
	coalesce(&a, root, []*Node{t.Root})
	return &Tree{Root: root}
}

// nodeArena chunk-allocates skeleton nodes: one allocation per 64
// nodes instead of one each. Chunks are abandoned (never copied or
// reallocated) when full, so node pointers taken from them stay valid.
type nodeArena struct {
	chunk []Node
}

func (a *nodeArena) new(label string) *Node {
	if len(a.chunk) == cap(a.chunk) {
		a.chunk = make([]Node, 0, 64)
	}
	a.chunk = append(a.chunk, Node{Label: label})
	return &a.chunk[len(a.chunk)-1]
}

// coalesce populates dst.Children from the union of the children of all
// src nodes, grouping by tag (first-seen order, for determinism). Each
// group becomes one skeleton child whose own children are recursively
// coalesced from the whole group. Groups are found by scanning the
// skeleton children built so far — their count is bounded by the
// distinct child labels, small in practice, and the scan beats a
// per-node map on the ingest hot path (Skeleton runs per observed
// document) — with a map fallback past a threshold so a hostile wide
// document with thousands of distinct tags cannot make this quadratic.
func coalesce(a *nodeArena, dst *Node, group []*Node) {
	var buckets [][]*Node
	var byLabel map[string]int
	for _, src := range group {
		for _, c := range src.Children {
			idx := -1
			if byLabel != nil {
				if i, ok := byLabel[c.Label]; ok {
					idx = i
				}
			} else {
				for i, d := range dst.Children {
					if d.Label == c.Label {
						idx = i
						break
					}
				}
			}
			if idx < 0 {
				dst.Children = append(dst.Children, a.new(c.Label))
				buckets = append(buckets, nil)
				idx = len(buckets) - 1
				if byLabel != nil {
					byLabel[c.Label] = idx
				} else if len(dst.Children) > 32 {
					byLabel = make(map[string]int, 2*len(dst.Children))
					for i, d := range dst.Children {
						byLabel[d.Label] = i
					}
				}
			}
			buckets[idx] = append(buckets[idx], c)
		}
	}
	for i, child := range dst.Children {
		coalesce(a, child, buckets[i])
	}
}

// IsSkeleton reports whether no node of the tree has two children with
// the same tag, i.e. whether the tree is its own skeleton.
func IsSkeleton(t *Tree) bool {
	if t == nil || t.Root == nil {
		return true
	}
	ok := true
	t.Root.Walk(func(n *Node) bool {
		seen := make(map[string]struct{}, len(n.Children))
		for _, c := range n.Children {
			if _, dup := seen[c.Label]; dup {
				ok = false
				return false
			}
			seen[c.Label] = struct{}{}
		}
		return ok
	})
	return ok
}
