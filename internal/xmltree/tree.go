// Package xmltree provides node-labeled tree representations of XML
// documents, an event-based parser, and skeleton-tree construction.
//
// Trees in this package are purely structural: each node carries a label
// (an element tag name or, optionally, a text value promoted to a label)
// and an ordered list of children. This is the document model of Chand,
// Felber and Garofalakis (ICDE'07), where both XML documents and tree
// patterns are unordered node-labeled trees and matching only tests for
// the existence of labeled children or descendants.
package xmltree

import (
	"fmt"
	"sort"
	"strings"
)

// Node is a single node of an XML tree. The zero value is an unlabeled
// leaf. Nodes are linked downward only; parents are not tracked because
// matching and synopsis construction both walk top-down.
type Node struct {
	// Label is the element tag name (or promoted text value).
	Label string
	// Children holds the node's child elements in document order.
	Children []*Node
}

// Tree is a rooted XML document tree.
type Tree struct {
	// Root is the document (root) element. A nil Root denotes the empty
	// document, which matches no pattern.
	Root *Node
}

// New returns a tree rooted at a fresh node with the given label.
func New(label string) *Tree {
	return &Tree{Root: &Node{Label: label}}
}

// AddChild appends a new child with the given label and returns it.
func (n *Node) AddChild(label string) *Node {
	c := &Node{Label: label}
	n.Children = append(n.Children, c)
	return c
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Size returns the number of nodes in the subtree rooted at n,
// including n itself. A nil node has size 0.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int {
	if t == nil {
		return 0
	}
	return t.Root.Size()
}

// Depth returns the number of levels in the subtree rooted at n
// (a single node has depth 1). A nil node has depth 0.
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Depth returns the number of levels in the tree.
func (t *Tree) Depth() int {
	if t == nil {
		return 0
	}
	return t.Root.Depth()
}

// TagPairs returns the number of element tag pairs in the tree, i.e. the
// number of nodes. The paper sizes generated documents in "tag pairs"
// (each element contributes one open/close pair).
func (t *Tree) TagPairs() int { return t.Size() }

// Walk calls fn for every node of the subtree rooted at n in preorder.
// If fn returns false the walk does not descend into that node's children.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// LabelPaths returns the set of distinct root-to-node label paths in the
// tree, each encoded as "/a/b/c". The result is sorted. It is primarily a
// testing and diagnostics helper: the synopsis stores exactly the
// information needed to recover these paths.
func (t *Tree) LabelPaths() []string {
	if t == nil || t.Root == nil {
		return nil
	}
	set := make(map[string]struct{})
	var rec func(n *Node, prefix string)
	rec = func(n *Node, prefix string) {
		p := prefix + "/" + n.Label
		set[p] = struct{}{}
		for _, c := range n.Children {
			rec(c, p)
		}
	}
	rec(t.Root, "")
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the subtree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	cp := &Node{Label: n.Label}
	if len(n.Children) > 0 {
		cp.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return cp
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	if t == nil {
		return nil
	}
	return &Tree{Root: t.Root.Clone()}
}

// Equal reports whether two subtrees are structurally identical,
// including child order. For order-insensitive comparison, canonicalize
// both sides first (see Canonicalize).
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.Label != o.Label || len(n.Children) != len(o.Children) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// Canonicalize sorts every child list by the canonical string of the
// child subtree, producing a deterministic representation of the
// unordered tree. It modifies the tree in place and returns it.
func (t *Tree) Canonicalize() *Tree {
	if t != nil && t.Root != nil {
		canonNode(t.Root)
	}
	return t
}

func canonNode(n *Node) string {
	keys := make([]string, len(n.Children))
	for i, c := range n.Children {
		keys[i] = canonNode(c)
	}
	sort.Sort(&byKey{keys: keys, nodes: n.Children})
	var b strings.Builder
	b.WriteString(n.Label)
	if len(n.Children) > 0 {
		b.WriteByte('(')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(k)
		}
		b.WriteByte(')')
	}
	return b.String()
}

type byKey struct {
	keys  []string
	nodes []*Node
}

func (s *byKey) Len() int           { return len(s.keys) }
func (s *byKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *byKey) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.nodes[i], s.nodes[j] = s.nodes[j], s.nodes[i]
}

// String renders the tree in the compact "a(b,c(d))" functional form used
// throughout tests and examples.
func (t *Tree) String() string {
	if t == nil || t.Root == nil {
		return "<empty>"
	}
	var b strings.Builder
	writeNode(&b, t.Root)
	return b.String()
}

func writeNode(b *strings.Builder, n *Node) {
	b.WriteString(n.Label)
	if len(n.Children) > 0 {
		b.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				b.WriteByte(',')
			}
			writeNode(b, c)
		}
		b.WriteByte(')')
	}
}

// ParseCompact parses the compact functional form produced by String,
// e.g. "a(b,c(d,e))". Labels may contain any characters except
// '(', ')', ',' and whitespace. It is the inverse of String and is used
// heavily in tests to state trees succinctly.
func ParseCompact(s string) (*Tree, error) {
	p := &compactParser{in: s}
	n, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("xmltree: trailing input at offset %d in %q", p.pos, s)
	}
	return &Tree{Root: n}, nil
}

type compactParser struct {
	in  string
	pos int
}

func (p *compactParser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n') {
		p.pos++
	}
}

func (p *compactParser) parseNode() (*Node, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) && !strings.ContainsRune("(),", rune(p.in[p.pos])) &&
		p.in[p.pos] != ' ' && p.in[p.pos] != '\t' && p.in[p.pos] != '\n' {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("xmltree: expected label at offset %d in %q", p.pos, p.in)
	}
	n := &Node{Label: p.in[start:p.pos]}
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == '(' {
		p.pos++
		for {
			c, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
			p.skipSpace()
			if p.pos >= len(p.in) {
				return nil, fmt.Errorf("xmltree: unterminated child list in %q", p.in)
			}
			if p.in[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.in[p.pos] == ')' {
				p.pos++
				break
			}
			return nil, fmt.Errorf("xmltree: unexpected %q at offset %d in %q", p.in[p.pos], p.pos, p.in)
		}
	}
	return n, nil
}
