package xmltree

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, s string) *Tree {
	t.Helper()
	tr, err := ParseCompact(s)
	if err != nil {
		t.Fatalf("ParseCompact(%q): %v", s, err)
	}
	return tr
}

func TestParseCompactRoundTrip(t *testing.T) {
	cases := []string{
		"a",
		"a(b)",
		"a(b,c)",
		"a(b(c,d),e(f))",
		"media(book(author(first(William),last(Shakespeare)),title(Hamlet)),CD(composer(first(Wolfgang),last(Mozart)),title(Requiem),interpreter(ensemble(Berliner-Phil.))))",
	}
	for _, s := range cases {
		tr := mustParse(t, s)
		if got := tr.String(); got != s {
			t.Errorf("round trip: got %q want %q", got, s)
		}
	}
}

func TestParseCompactErrors(t *testing.T) {
	bad := []string{"", "(", "a(", "a(b", "a(b,)", "a)b", "a(b))", "a b", ",", "a(,b)"}
	for _, s := range bad {
		if _, err := ParseCompact(s); err == nil {
			t.Errorf("ParseCompact(%q): expected error", s)
		}
	}
}

func TestSizeDepth(t *testing.T) {
	tr := mustParse(t, "a(b(c,d),e)")
	if got := tr.Size(); got != 5 {
		t.Errorf("Size = %d, want 5", got)
	}
	if got := tr.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
	if got := tr.TagPairs(); got != 5 {
		t.Errorf("TagPairs = %d, want 5", got)
	}
	var empty *Tree
	if empty.Size() != 0 || empty.Depth() != 0 {
		t.Errorf("nil tree should have size/depth 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := mustParse(t, "a(b(c),d)")
	cp := tr.Clone()
	if !tr.Root.Equal(cp.Root) {
		t.Fatalf("clone differs from original")
	}
	cp.Root.Children[0].Label = "zzz"
	if tr.Root.Children[0].Label == "zzz" {
		t.Errorf("mutating clone affected original")
	}
}

func TestCanonicalize(t *testing.T) {
	a := mustParse(t, "a(c,b(e,d))")
	b := mustParse(t, "a(b(d,e),c)")
	a.Canonicalize()
	b.Canonicalize()
	if !a.Root.Equal(b.Root) {
		t.Errorf("canonical forms differ: %s vs %s", a, b)
	}
}

func TestLabelPaths(t *testing.T) {
	tr := mustParse(t, "a(b(c),b(d),e)")
	got := tr.LabelPaths()
	want := []string{"/a", "/a/b", "/a/b/c", "/a/b/d", "/a/e"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("LabelPaths = %v, want %v", got, want)
	}
}

func TestSkeletonCoalesces(t *testing.T) {
	// Two "b" children with different grandchildren coalesce into one
	// "b" holding both.
	tr := mustParse(t, "a(b(c),b(d),e)")
	sk := Skeleton(tr)
	want := mustParse(t, "a(b(c,d),e)")
	sk.Canonicalize()
	want.Canonicalize()
	if !sk.Root.Equal(want.Root) {
		t.Errorf("Skeleton = %s, want %s", sk, want)
	}
	if !IsSkeleton(sk) {
		t.Errorf("Skeleton output is not a skeleton")
	}
}

func TestSkeletonRecursiveCoalesce(t *testing.T) {
	// Coalescing must continue below merged nodes: the two e-children
	// arising from distinct b-parents must merge too.
	tr := mustParse(t, "a(b(e(k)),b(e(m)))")
	sk := Skeleton(tr)
	want := mustParse(t, "a(b(e(k,m)))")
	sk.Canonicalize()
	want.Canonicalize()
	if !sk.Root.Equal(want.Root) {
		t.Errorf("Skeleton = %s, want %s", sk, want)
	}
}

func TestSkeletonPaperT1(t *testing.T) {
	// T1 from Figure 2: a(b(e(k),g(k,m),e(m))) has skeleton
	// a(b(e(k,m),g(k,m))).
	t1 := mustParse(t, "a(b(e(k),g(k,m),e(m)))")
	sk := Skeleton(t1)
	want := mustParse(t, "a(b(e(k,m),g(k,m)))")
	sk.Canonicalize()
	want.Canonicalize()
	if !sk.Root.Equal(want.Root) {
		t.Errorf("Skeleton(T1) = %s, want %s", sk, want)
	}
}

func TestSkeletonPreservesLabelPaths(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTree(rand.New(rand.NewSource(seed)), 4, 3)
		sk := Skeleton(tr)
		return reflect.DeepEqual(tr.LabelPaths(), sk.LabelPaths()) && IsSkeleton(sk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSkeletonIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTree(rand.New(rand.NewSource(seed)), 4, 3)
		s1 := Skeleton(tr)
		s2 := Skeleton(s1)
		s1.Canonicalize()
		s2.Canonicalize()
		return s1.Root.Equal(s2.Root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomTree builds a small random tree over a tiny alphabet so that
// same-tag siblings are common and skeletonization is exercised.
func randomTree(rng *rand.Rand, maxDepth, maxFanout int) *Tree {
	labels := []string{"a", "b", "c", "d"}
	var build func(depth int) *Node
	build = func(depth int) *Node {
		n := &Node{Label: labels[rng.Intn(len(labels))]}
		if depth < maxDepth {
			for i := 0; i < rng.Intn(maxFanout+1); i++ {
				n.Children = append(n.Children, build(depth+1))
			}
		}
		return n
	}
	return &Tree{Root: build(1)}
}

func TestParseXMLBasic(t *testing.T) {
	tr, err := ParseString(`<a><b><c/></b><b><d/></b></a>`, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := mustParse(t, "a(b(c),b(d))")
	if !tr.Root.Equal(want.Root) {
		t.Errorf("parsed %s, want %s", tr, want)
	}
}

func TestParseXMLTextAsNodes(t *testing.T) {
	tr, err := ParseString(`<cd><composer>Mozart</composer></cd>`, ParseOptions{TextAsNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	want := mustParse(t, "cd(composer(Mozart))")
	if !tr.Root.Equal(want.Root) {
		t.Errorf("parsed %s, want %s", tr, want)
	}
	// Without the option, text disappears.
	tr2, err := ParseString(`<cd><composer>Mozart</composer></cd>`, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr2.String(); got != "cd(composer)" {
		t.Errorf("parsed %q, want cd(composer)", got)
	}
}

func TestParseXMLAttributes(t *testing.T) {
	tr, err := ParseString(`<a x="1"><b/></a>`, ParseOptions{AttributesAsNodes: true, TextAsNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.String(); got != "a(@x(1),b)" {
		t.Errorf("parsed %q, want a(@x(1),b)", got)
	}
}

func TestParseXMLErrors(t *testing.T) {
	for _, s := range []string{"", "<a>", "<a></b>", "<a/><b/>", "text only"} {
		if _, err := ParseString(s, ParseOptions{}); err == nil {
			t.Errorf("ParseString(%q): expected error", s)
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	tr := mustParse(t, "a(b(c,d),e)")
	s, err := XMLString(tr, false)
	if err != nil {
		t.Fatal(err)
	}
	if s != "<a><b><c/><d/></b><e/></a>" {
		t.Errorf("XMLString = %q", s)
	}
	back, err := ParseString(s, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !back.Root.Equal(tr.Root) {
		t.Errorf("XML round trip: got %s want %s", back, tr)
	}
	// Indented output parses back to the same tree too.
	si, err := XMLString(tr, true)
	if err != nil {
		t.Fatal(err)
	}
	back2, err := ParseString(si, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !back2.Root.Equal(tr.Root) {
		t.Errorf("indented XML round trip: got %s want %s", back2, tr)
	}
	if !strings.Contains(si, "\n") {
		t.Errorf("indented output has no newlines: %q", si)
	}
}

type failWriter struct{ after int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.after -= len(p)
	if w.after < 0 {
		return 0, fmt.Errorf("synthetic write failure")
	}
	return len(p), nil
}

func TestWriteXMLPropagatesErrors(t *testing.T) {
	tr := mustParse(t, "a(b(c,d),e)")
	if err := WriteXML(&failWriter{after: 5}, tr, false); err == nil {
		t.Error("expected write error")
	}
	if err := WriteXML(&failWriter{after: 5}, tr, true); err == nil {
		t.Error("expected write error (indented)")
	}
	if err := WriteXML(&failWriter{after: 1 << 20}, nil, false); err == nil {
		t.Error("expected error for nil tree")
	}
	if _, err := XMLString(&Tree{}, false); err == nil {
		t.Error("expected error for empty tree")
	}
}

func TestWalkPruning(t *testing.T) {
	tr := mustParse(t, "a(b(c),d)")
	var visited []string
	tr.Root.Walk(func(n *Node) bool {
		visited = append(visited, n.Label)
		return n.Label != "b" // do not descend into b
	})
	if !reflect.DeepEqual(visited, []string{"a", "b", "d"}) {
		t.Errorf("Walk visited %v", visited)
	}
}
