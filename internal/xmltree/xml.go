package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// ParseOptions controls how raw XML is mapped onto the structural tree
// model.
type ParseOptions struct {
	// TextAsNodes promotes non-whitespace character data to leaf nodes
	// labeled by the trimmed text. This mirrors the paper's Figure 1,
	// where values such as "Mozart" appear as labeled leaves.
	TextAsNodes bool
	// AttributesAsNodes promotes attributes to child nodes labeled
	// "@name" with a single child holding the value (when TextAsNodes is
	// set) or no children otherwise.
	AttributesAsNodes bool
}

// Parse reads one XML document from r using an event-based (streaming)
// decoder and returns its tree. Namespaces are flattened to local names;
// processing instructions, comments and directives are ignored.
func Parse(r io.Reader, opts ParseOptions) (*Tree, error) {
	dec := xml.NewDecoder(r)
	var stack []*Node
	var root *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Label: t.Name.Local}
			if opts.AttributesAsNodes {
				for _, a := range t.Attr {
					an := n.AddChild("@" + a.Name.Local)
					if opts.TextAsNodes && a.Value != "" {
						an.AddChild(a.Value)
					}
				}
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: parse: multiple root elements")
				}
				root = n
			} else {
				p := stack[len(stack)-1]
				p.Children = append(p.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element %q", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if !opts.TextAsNodes || len(stack) == 0 {
				continue
			}
			txt := strings.TrimSpace(string(t))
			if txt == "" {
				continue
			}
			p := stack[len(stack)-1]
			p.AddChild(txt)
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: parse: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse: unexpected EOF inside element %q", stack[len(stack)-1].Label)
	}
	return &Tree{Root: root}, nil
}

// ParseString is Parse over a string.
func ParseString(s string, opts ParseOptions) (*Tree, error) {
	return Parse(strings.NewReader(s), opts)
}

// WriteXML serializes the tree as XML to w. Labels are written as element
// names verbatim; callers are responsible for using XML-safe labels.
// Indentation uses two spaces per level; indent < 0 writes compact
// output.
func WriteXML(w io.Writer, t *Tree, indent bool) error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("xmltree: cannot serialize empty tree")
	}
	bw := &errWriter{w: w}
	writeXMLNode(bw, t.Root, 0, indent)
	if indent {
		bw.writeString("\n")
	}
	return bw.err
}

// XMLString returns the XML serialization of the tree.
func XMLString(t *Tree, indent bool) (string, error) {
	var b strings.Builder
	if err := WriteXML(&b, t, indent); err != nil {
		return "", err
	}
	return b.String(), nil
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) writeString(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

func writeXMLNode(w *errWriter, n *Node, depth int, indent bool) {
	if indent {
		if depth > 0 {
			w.writeString("\n")
		}
		w.writeString(strings.Repeat("  ", depth))
	}
	if n.IsLeaf() {
		w.writeString("<" + n.Label + "/>")
		return
	}
	w.writeString("<" + n.Label + ">")
	for _, c := range n.Children {
		writeXMLNode(w, c, depth+1, indent)
	}
	if indent {
		w.writeString("\n" + strings.Repeat("  ", depth))
	}
	w.writeString("</" + n.Label + ">")
}
