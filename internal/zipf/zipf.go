// Package zipf provides a Zipf-distributed sampler over a finite domain
// {0, …, n-1} with arbitrary skew θ ≥ 0. The paper's workload generator
// selects element tag names with skew θ = 1, which math/rand's Zipf
// (requiring s > 1) cannot express, hence this implementation.
//
// Element i (0-based rank) is drawn with probability proportional to
// 1/(i+1)^θ. θ = 0 degenerates to the uniform distribution.
package zipf

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks from a finite Zipf(θ) distribution by inverse-CDF
// lookup (binary search over the precomputed cumulative weights).
type Zipf struct {
	cdf []float64
	rng *rand.Rand
}

// New returns a sampler over {0,…,n-1} with skew theta, using the given
// deterministic source. It panics when n < 1 or theta < 0.
func New(rng *rand.Rand, n int, theta float64) *Zipf {
	if n < 1 {
		panic("zipf: domain size must be >= 1")
	}
	if theta < 0 {
		panic("zipf: negative skew")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	// Normalize so the last entry is exactly 1.
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1
	return &Zipf{cdf: cdf, rng: rng}
}

// Next draws a rank in {0,…,n-1}.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the domain size.
func (z *Zipf) N() int { return len(z.cdf) }

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
