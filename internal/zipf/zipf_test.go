package zipf

import (
	"math"
	"math/rand"
	"testing"
)

func TestUniformWhenThetaZero(t *testing.T) {
	z := New(rand.New(rand.NewSource(1)), 5, 0)
	for i := 0; i < 5; i++ {
		if got := z.Prob(i); math.Abs(got-0.2) > 1e-12 {
			t.Errorf("Prob(%d) = %v, want 0.2", i, got)
		}
	}
}

func TestProbSumsToOne(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 1, 2} {
		z := New(rand.New(rand.NewSource(1)), 100, theta)
		sum := 0.0
		for i := 0; i < z.N(); i++ {
			sum += z.Prob(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("theta=%v: probs sum to %v", theta, sum)
		}
	}
}

func TestSkewOrdering(t *testing.T) {
	z := New(rand.New(rand.NewSource(1)), 10, 1)
	for i := 1; i < z.N(); i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-12 {
			t.Errorf("Prob(%d)=%v > Prob(%d)=%v; Zipf probabilities must be non-increasing",
				i, z.Prob(i), i-1, z.Prob(i-1))
		}
	}
	// θ=1 over n=10: P(0)/P(1) should be 2.
	if r := z.Prob(0) / z.Prob(1); math.Abs(r-2) > 1e-9 {
		t.Errorf("P(0)/P(1) = %v, want 2", r)
	}
}

func TestEmpiricalFrequencies(t *testing.T) {
	const n, draws = 8, 200000
	z := New(rand.New(rand.NewSource(7)), n, 1)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	for i := 0; i < n; i++ {
		got := float64(counts[i]) / draws
		want := z.Prob(i)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d: empirical %v vs theoretical %v", i, got, want)
		}
	}
}

func TestSingletonDomain(t *testing.T) {
	z := New(rand.New(rand.NewSource(1)), 1, 1)
	for i := 0; i < 10; i++ {
		if z.Next() != 0 {
			t.Fatal("singleton domain must always draw 0")
		}
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(rand.New(rand.NewSource(1)), 0, 1) },
		func() { New(rand.New(rand.NewSource(1)), 5, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
