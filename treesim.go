// Package treesim estimates the similarity of tree-pattern
// subscriptions (an XPath subset) over streams of XML documents. It is a
// from-scratch Go reproduction of
//
//	R. Chand, P. Felber, M. Garofalakis.
//	"Tree-Pattern Similarity Estimation for Scalable Content-based
//	Routing". ICDE 2007, pp. 1016–1025.
//
// The core object is the Estimator: it ingests a stream of XML documents
// into a concise synopsis (a path-structure summary whose nodes carry
// compressed matching sets) and answers, at any time,
//
//   - Selectivity(p): the estimated fraction of documents matching a
//     tree pattern p, and
//   - Similarity(m, p, q): proximity metrics M1 = P(p|q),
//     M2 = (P(p|q)+P(q|p))/2, M3 = P(p∧q)/P(p∨q) between subscriptions,
//
// which content-based publish/subscribe systems use to cluster consumers
// into semantic communities.
//
// Quick start:
//
//	est := treesim.New(treesim.Config{Representation: treesim.Hashes, HashCapacity: 1000})
//	doc, _ := treesim.ParseXMLString("<media><CD><title/></CD></media>")
//	est.ObserveTree(doc)
//	p, _ := treesim.ParsePattern("/media/CD")
//	q, _ := treesim.ParsePattern("//CD[title]")
//	fmt.Println(est.Selectivity(p), est.Similarity(treesim.M3, p, q))
//
// Subpackages under internal implement the pieces: document trees and
// skeletons, tree patterns and exact matching, distinct/reservoir
// sampling, the synopsis with its pruning operations, the recursive SEL
// selectivity algorithm, workload generators for the paper's evaluation,
// and a semantic-community routing simulation.
package treesim

import (
	"io"
	"log/slog"
	"strings"

	"treesim/internal/aggregate"
	"treesim/internal/broker"
	"treesim/internal/cluster"
	"treesim/internal/core"
	"treesim/internal/dtd"
	"treesim/internal/metrics"
	"treesim/internal/overlay"
	"treesim/internal/pattern"
	"treesim/internal/querygen"
	"treesim/internal/synopsis"
	"treesim/internal/telemetry"
	"treesim/internal/xmlgen"
	"treesim/internal/xmltree"
)

// Core types, re-exported for public use.
type (
	// Estimator is the streaming selectivity/similarity estimator.
	Estimator = core.Estimator
	// WindowEstimator estimates over a sliding window of recent
	// documents (exact within the window; an extension beyond the
	// paper).
	WindowEstimator = core.WindowEstimator
	// Config configures an Estimator.
	Config = core.Config
	// Pattern is a tree-pattern subscription.
	Pattern = pattern.Pattern
	// Tree is a node-labeled XML document tree.
	Tree = xmltree.Tree
	// Metric identifies a proximity metric (M1, M2, M3).
	Metric = metrics.Metric
	// SynopsisStats reports synopsis size in the paper's units.
	SynopsisStats = synopsis.Stats
	// DTD is a document type definition for workload generation.
	DTD = dtd.DTD
	// ParseOptions controls XML-to-tree mapping.
	ParseOptions = xmltree.ParseOptions
)

// Matching-set representations.
const (
	// Counters is the per-node counter baseline.
	Counters = core.Counters
	// Sets is document-level reservoir sampling.
	Sets = core.Sets
	// Hashes is per-node distinct sampling (recommended).
	Hashes = core.Hashes
)

// Proximity metrics.
const (
	// M1 is the conditional probability P(p|q) (asymmetric).
	M1 = metrics.M1
	// M2 is the mean of the two conditionals (symmetric).
	M2 = metrics.M2
	// M3 is joint over union, a Jaccard coefficient (symmetric).
	M3 = metrics.M3
)

// New returns a streaming estimator.
func New(cfg Config) *Estimator { return core.NewEstimator(cfg) }

// Load reconstructs an estimator previously serialized with
// (*Estimator).Save.
func Load(r io.Reader) (*Estimator, error) { return core.LoadEstimator(r) }

// NewWindow returns an estimator over a sliding window of the given
// number of most recent documents.
func NewWindow(window int) *WindowEstimator {
	return core.NewWindowEstimator(window, xmltree.ParseOptions{})
}

// ContainsPattern reports whether p contains q (every document matching
// q matches p). The test is the classical homomorphism check: sound,
// and complete except for some interactions of "//", "*" and branching.
func ContainsPattern(p, q *Pattern) bool { return pattern.Contains(p, q) }

// MinimizePattern returns an equivalent pattern with redundant branches
// removed.
func MinimizePattern(p *Pattern) *Pattern { return p.Minimize() }

// GeneralizePatterns returns a pattern containing both inputs — the
// aggregation operator of Chan et al. (VLDB'02), the paper's reference
// [4].
func GeneralizePatterns(p, q *Pattern) *Pattern { return aggregate.Generalize(p, q) }

// AggregationResult is the outcome of subscription aggregation.
type AggregationResult = aggregate.Result

// AggregateSubscriptions reduces a subscription set to at most target
// patterns, greedily merging the pairs whose generalization adds the
// least estimated selectivity over the estimator's observed stream.
// Every aggregate contains the subscriptions it replaces, so routing
// through aggregates never loses deliveries.
func AggregateSubscriptions(est *Estimator, subs []*Pattern, target int) AggregationResult {
	return aggregate.Aggregate(subs, target, estimatorSels{est})
}

// estimatorSels adapts the estimator to the aggregation package.
type estimatorSels struct{ est *Estimator }

func (s estimatorSels) P(p *pattern.Pattern) float64       { return s.est.Selectivity(p) }
func (s estimatorSels) PAnd(p, q *pattern.Pattern) float64 { return s.est.Joint(p, q) }

// ParsePattern parses a tree pattern from the XPath subset, e.g.
// "/media/CD/*/last/Mozart", "//CD[title]", "/.[//a]//b".
func ParsePattern(xpath string) (*Pattern, error) { return pattern.Parse(xpath) }

// MustParsePattern is ParsePattern that panics on error.
func MustParsePattern(xpath string) *Pattern { return pattern.MustParse(xpath) }

// ParseXML reads one XML document into a tree (element structure only;
// use an Estimator's Config.ParseOptions for text/attribute handling).
func ParseXML(r io.Reader) (*Tree, error) {
	return xmltree.Parse(r, xmltree.ParseOptions{})
}

// ParseXMLString is ParseXML over a string.
func ParseXMLString(s string) (*Tree, error) {
	return xmltree.Parse(strings.NewReader(s), xmltree.ParseOptions{})
}

// Matches reports whether document T satisfies pattern p under the exact
// semantics of the paper (used as ground truth; the Estimator
// approximates the fraction of matching documents).
func Matches(t *Tree, p *Pattern) bool { return pattern.Matches(t, p) }

// NITFLikeDTD returns the 123-element news-like evaluation schema.
func NITFLikeDTD() *DTD { return dtd.NITFLike() }

// XCBLLikeDTD returns the 569-element business-like evaluation schema.
func XCBLLikeDTD() *DTD { return dtd.XCBLLike() }

// MediaDTD returns the small Figure-1 style media schema used by the
// examples.
func MediaDTD() *DTD { return dtd.Media() }

// GenerateDocuments produces n random documents from a DTD, calibrated
// to average roughly 100 tag pairs (the paper's corpus regime).
func GenerateDocuments(d *DTD, n int, seed int64) []*Tree {
	opts := xmlgen.Calibrate(d, 100, seed)
	return xmlgen.New(d, opts).GenerateN(n)
}

// GeneratePatterns produces n distinct tree patterns from a DTD using
// the paper's workload parameters (h=10, p*=0.1, p//=0.1, pλ=0.1, θ=1).
func GeneratePatterns(d *DTD, n int, seed int64) []*Pattern {
	return querygen.New(d, querygen.Defaults(seed)).GenerateDistinct(n)
}

// XMLString serializes a document tree back to XML (element structure
// only; promoted text/attribute nodes are not serializable).
func XMLString(t *Tree) (string, error) { return xmltree.XMLString(t, false) }

// Live broker types, re-exported for public use (package
// internal/broker; served over HTTP by cmd/treesimd).
type (
	// Broker is the live pub/sub engine: runtime subscription churn
	// with incremental similarity maintenance, community-based
	// dissemination, bounded per-consumer delivery queues.
	Broker = broker.Engine
	// BrokerConfig configures a Broker.
	BrokerConfig = broker.Config
	// BrokerStats is a point-in-time broker snapshot.
	BrokerStats = broker.Stats
	// Delivery is one document routed to one subscription.
	Delivery = broker.Delivery
	// PublishResult summarizes the routing of one published document.
	PublishResult = broker.PublishResult
	// RebuildPolicy decides when churn warrants full re-clustering.
	RebuildPolicy = broker.RebuildPolicy
	// DeliveryMode selects a subscription's delivery contract:
	// AtMostOnce (bounded ring, counted loss) or AtLeastOnce
	// (cursor-ordered log, explicit ack, lease-based redelivery).
	DeliveryMode = broker.DeliveryMode
	// SubscribeOptions carries per-subscription options for
	// Broker.SubscribeOpts (currently the delivery mode).
	SubscribeOptions = broker.SubscribeOptions
	// DrainResult is one acked-mode drain batch: deliveries plus the
	// batch cursor, committed floor, redelivery count, and (in
	// at-most-once mode) the explicit loss gap.
	DrainResult = broker.DrainResult
	// CommunitySet is an incrementally maintained clustering
	// (package internal/cluster).
	CommunitySet = cluster.Communities
)

// Delivery-mode constants, re-exported for SubscribeOptions.
const (
	AtMostOnce  = broker.AtMostOnce
	AtLeastOnce = broker.AtLeastOnce
)

// NewBroker starts a live broker engine (stop it with Close).
func NewBroker(cfg BrokerConfig) *Broker { return broker.New(cfg) }

// Explainability and introspection types, re-exported for public use.
// Explanation (Broker.Explain) is a side-effect-free record of the
// routing decision the broker would make for one document;
// ForwardExplanation (OverlayNode.ExplainForward) extends it with the
// per-link forward plan. The Introspect* snapshot accessors return the
// matching views over live state without holding routing hot locks.
type (
	// Explanation is the decision record of a dry-run local publish.
	Explanation = broker.Explanation
	// CommunityVerdict is one community's matched/skipped verdict
	// within an Explanation.
	CommunityVerdict = broker.CommunityVerdict
	// CommunityInfo describes one clustered community
	// (Broker.IntrospectCommunities).
	CommunityInfo = broker.CommunityInfo
	// SubscriptionInfo describes one live subscription
	// (Broker.IntrospectSubscriptions).
	SubscriptionInfo = broker.SubscriptionInfo
	// ForwardExplanation is a dry-run routing decision across an
	// overlay node: local Explanation plus per-link forward verdicts.
	ForwardExplanation = overlay.ForwardExplanation
	// ForwardVerdict is one link's forward-or-skip decision with its
	// reason and the origin adverts that matched.
	ForwardVerdict = overlay.ForwardVerdict
	// RouteInfo is one routing-table entry
	// (OverlayNode.IntrospectRoutes).
	RouteInfo = overlay.RouteInfo
	// LinkInfo is one peer link's health snapshot
	// (OverlayNode.IntrospectLinks).
	LinkInfo = overlay.LinkInfo
)

// Overlay federation types, re-exported for public use (package
// internal/overlay; served over HTTP by cmd/treesimd -federate and
// measured by cmd/treesim-net).
type (
	// OverlayNode federates a Broker into a routed multi-broker
	// topology: similarity-aggregated subscription advertisements,
	// per-link routing tables, TTL + seen-set forwarding.
	OverlayNode = overlay.Node
	// OverlayConfig configures an OverlayNode.
	OverlayConfig = overlay.Config
	// OverlayTransport delivers wire messages to one peer node.
	OverlayTransport = overlay.Transport
)

// NewOverlayNode attaches a federation node to a broker engine (it
// installs the engine's churn hook; detach with Close).
func NewOverlayNode(eng *Broker, cfg OverlayConfig) *OverlayNode {
	return overlay.New(eng, cfg)
}

// ConnectNodes links two in-process overlay nodes bidirectionally
// through the wire codec.
func ConnectNodes(a, b *OverlayNode) error { return overlay.Connect(a, b) }

// Telemetry types, re-exported for public use (package
// internal/telemetry). Hand one MetricsRegistry to BrokerConfig,
// OverlayConfig, and persistence so a single Prometheus-text scrape
// (MetricsRegistry.WritePrometheus) covers the whole process.
type (
	// MetricsRegistry holds metric families and renders Prometheus
	// text exposition.
	MetricsRegistry = telemetry.Registry
	// TraceSpan is one hop's record of a traced publication.
	TraceSpan = telemetry.Span
	// Event is one captured operational log record.
	Event = telemetry.Event
	// EventRing is a bounded ring of recent operational events; pair
	// with TeeEvents to capture WARN+ slog records into it.
	EventRing = telemetry.EventRing
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewEventRing returns a bounded operational-event ring (capacity <= 0
// selects the default).
func NewEventRing(capacity int) *EventRing { return telemetry.NewEventRing(capacity) }

// TeeEvents wraps a slog handler so records at or above min are also
// captured into ring, regardless of the wrapped handler's own level.
func TeeEvents(next slog.Handler, ring *EventRing, min slog.Level) slog.Handler {
	return telemetry.TeeEvents(next, ring, min)
}

// BuildCommunities clusters a similarity matrix into an incrementally
// maintainable CommunitySet (greedy seeding; representatives are the
// seeds). Use CommunitySet.Assign/Remove for churn without a global
// re-clustering.
func BuildCommunities(sim [][]float64, threshold float64) *CommunitySet {
	return cluster.BuildGreedy(sim, threshold)
}

// Communities clusters subscriptions into semantic communities: each
// community groups subscriptions whose pairwise similarity under metric
// m (estimated over the observed stream) reaches the threshold with the
// community's seed subscription. It returns the index sets of the
// communities, largest first.
func Communities(est *Estimator, m Metric, subs []*Pattern, threshold float64) [][]int {
	sim := est.SimilarityMatrix(m, subs)
	return cluster.Greedy(sim, threshold)
}
