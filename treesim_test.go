package treesim

import (
	"math"
	"strings"
	"testing"
)

// TestPublicAPIQuickstart exercises the README flow end to end through
// the public facade.
func TestPublicAPIQuickstart(t *testing.T) {
	est := New(Config{Representation: Hashes, HashCapacity: 1000, Seed: 1})
	docs := []string{
		`<media><CD><composer><last><Mozart/></last></composer></CD></media>`,
		`<media><CD><composer><last><Brahms/></last></composer></CD></media>`,
		`<media><book><author><last><Mozart/></last></author></book></media>`,
	}
	for _, s := range docs {
		tr, err := ParseXMLString(s)
		if err != nil {
			t.Fatal(err)
		}
		est.ObserveTree(tr)
	}
	if est.DocsObserved() != 3 {
		t.Fatalf("DocsObserved = %d", est.DocsObserved())
	}
	sel, err := est.SelectivityXPath("/media/CD")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sel-2.0/3) > 1e-12 {
		t.Errorf("P(/media/CD) = %v, want 2/3", sel)
	}
	sim, err := est.SimilarityXPath(M3, "//CD", "//composer")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sim-1) > 1e-12 {
		t.Errorf("M3(//CD, //composer) = %v, want 1 (co-occur in both docs)", sim)
	}
}

func TestPublicMatches(t *testing.T) {
	doc, err := ParseXMLString(`<a><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if !Matches(doc, MustParsePattern("/a/b")) {
		t.Error("Matches(/a/b) = false")
	}
	if Matches(doc, MustParsePattern("/a/c")) {
		t.Error("Matches(/a/c) = true")
	}
}

func TestPublicGenerators(t *testing.T) {
	d := NITFLikeDTD()
	if d.Len() != 123 {
		t.Fatalf("NITF-like has %d elements", d.Len())
	}
	if XCBLLikeDTD().Len() != 569 {
		t.Fatal("xCBL-like element count wrong")
	}
	docs := GenerateDocuments(d, 20, 1)
	if len(docs) != 20 {
		t.Fatalf("GenerateDocuments returned %d", len(docs))
	}
	pats := GeneratePatterns(d, 20, 2)
	if len(pats) != 20 {
		t.Fatalf("GeneratePatterns returned %d", len(pats))
	}
	for _, p := range pats {
		if !strings.HasPrefix(p.String(), "/") {
			t.Errorf("pattern %q not absolute", p)
		}
	}
}

func TestPublicCommunities(t *testing.T) {
	est := New(Config{Representation: Sets, SetCapacity: 1 << 16, Seed: 1})
	for _, s := range []string{
		"<r><x/><y/></r>", "<r><x/></r>", "<r><z/></r>", "<r><z/><w/></r>",
	} {
		tr, err := ParseXMLString(s)
		if err != nil {
			t.Fatal(err)
		}
		est.ObserveTree(tr)
	}
	subs := []*Pattern{
		MustParsePattern("//x"),
		MustParsePattern("/r/x"),
		MustParsePattern("//z"),
	}
	comms := Communities(est, M3, subs, 0.9)
	// //x and /r/x match the same docs (0,1); //z matches {2,3}.
	if len(comms) != 2 {
		t.Fatalf("communities = %v, want 2 groups", comms)
	}
	if len(comms[0]) != 2 || comms[0][0] != 0 || comms[0][1] != 1 {
		t.Errorf("first community = %v, want [0 1]", comms[0])
	}
}

func TestPublicParsers(t *testing.T) {
	if _, err := ParsePattern("///"); err == nil {
		t.Error("bad pattern should error")
	}
	p, err := ParsePattern("/a/b")
	if err != nil || p.String() != "/a/b" {
		t.Errorf("ParsePattern: %v %v", p, err)
	}
	if _, err := ParseXML(strings.NewReader("<a><b/></a>")); err != nil {
		t.Errorf("ParseXML: %v", err)
	}
	if _, err := ParseXML(strings.NewReader("<oops")); err == nil {
		t.Error("bad XML should error")
	}
}

func TestPublicGeneralizeAndAggregate(t *testing.T) {
	g := GeneralizePatterns(MustParsePattern("/a/b"), MustParsePattern("/a/c"))
	if !ContainsPattern(g, MustParsePattern("/a/b")) || !ContainsPattern(g, MustParsePattern("/a/c")) {
		t.Errorf("GeneralizePatterns(%s) does not contain both inputs", g)
	}
	est := New(Config{Representation: Sets, SetCapacity: 1 << 16, Seed: 1})
	for _, s := range []string{"<a><b/></a>", "<a><c/></a>", "<x><y/></x>"} {
		tr, err := ParseXMLString(s)
		if err != nil {
			t.Fatal(err)
		}
		est.ObserveTree(tr)
	}
	subs := []*Pattern{
		MustParsePattern("/a/b"),
		MustParsePattern("/a/c"),
		MustParsePattern("/x/y"),
	}
	res := AggregateSubscriptions(est, subs, 2)
	if len(res.Patterns) != 2 {
		t.Fatalf("aggregated to %d, want 2", len(res.Patterns))
	}
	covered := 0
	for _, g := range res.Groups {
		covered += len(g)
	}
	if covered != 3 {
		t.Errorf("groups cover %d inputs, want 3", covered)
	}
}

func TestPublicStatsAndCompress(t *testing.T) {
	est := New(Config{Representation: Hashes, HashCapacity: 100, Seed: 2})
	for _, d := range GenerateDocuments(MediaDTD(), 100, 3) {
		est.ObserveTree(d)
	}
	st := est.Stats()
	if st.Size() <= 0 || st.Nodes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	ratio := est.Compress(0.8)
	if ratio > 1.0 {
		t.Errorf("compress ratio %v", ratio)
	}
}
